"""Unit tests for the ESCAPE node (SCA term growth, PPF piggyback, clock gate)."""

import pytest

from helpers import FakeEnvironment, fast_protocol_config, small_cluster

from repro.escape.configuration import Configuration
from repro.escape.messages import (
    EscapeAppendEntriesRequest,
    EscapeAppendEntriesResponse,
    EscapeRequestVoteRequest,
)
from repro.escape.node import EscapeNode
from repro.raft.messages import RequestVoteResponse
from repro.raft.state import Role
from repro.raft.timers import ScriptOnlyPolicy
from repro.storage.log import LogEntry
from repro.storage.persistent import InMemoryStore


def make_node(node_id=1, size=5, configuration=None, **kwargs):
    env = FakeEnvironment(node_id=node_id)
    node = EscapeNode(
        node_id=node_id,
        cluster=small_cluster(size),
        env=env,
        protocol_config=kwargs.pop("protocol_config", fast_protocol_config()),
        initial_configuration=configuration,
        **kwargs,
    )
    return node, env


def make_leader(node_id=5, size=5, **kwargs):
    node, env = make_node(node_id=node_id, size=size, **kwargs)
    node.start()
    env.fire_next_timer(f"S{node_id}:election-timeout")
    for peer in node.peers:
        node.on_message(
            peer,
            RequestVoteResponse(term=node.current_term, voter_id=peer, vote_granted=True),
        )
        if node.role is Role.LEADER:
            break
    assert node.role is Role.LEADER
    env.clear_sent()
    return node, env


class TestScaBehaviour:
    def test_initial_configuration_derived_from_server_id(self):
        node, _ = make_node(node_id=3, size=5)
        # fast_protocol_config: base 100ms, k 20ms -> S3 in a 5-cluster: 100 + 20*2.
        assert node.configuration.priority == 3
        assert node.configuration.timer_period_ms == 140.0
        assert node.configuration.conf_clock == 0

    def test_election_timeout_comes_from_configuration(self):
        node, env = make_node(node_id=2, size=5)
        node.start()
        timer = env.pending_timers()[0]
        assert timer.delay_ms == node.configuration.timer_period_ms

    def test_term_grows_by_priority_on_campaign(self):
        # Eq. 2: a server with priority P campaigning from term t moves to t + P.
        node, env = make_node(node_id=4, size=5)
        node.start()
        env.fire_next_timer("S4:election-timeout")
        assert node.current_term == 4
        env.fire_next_timer("S4:election-timeout")
        assert node.current_term == 8

    def test_higher_term_messages_adopted_verbatim(self):
        # Eq. 3: the term jumps to the received value regardless of priority.
        node, env = make_node(node_id=2, size=5)
        node.start()
        node.on_message(
            3,
            EscapeRequestVoteRequest(term=41, candidate_id=3, conf_clock=0, priority=3),
        )
        assert node.current_term == 41

    def test_vote_request_carries_configuration_metadata(self):
        configuration = Configuration(priority=4, timer_period_ms=120.0, conf_clock=6)
        node, env = make_node(node_id=4, size=5, configuration=configuration)
        node.start()
        env.fire_next_timer("S4:election-timeout")
        request = env.sent_payloads(EscapeRequestVoteRequest)[0]
        assert request.conf_clock == 6
        assert request.priority == 4

    def test_timeout_override_takes_precedence_then_expires(self):
        node, env = make_node(
            node_id=2, size=5, timeout_override=ScriptOnlyPolicy(script=(77.0,))
        )
        node.start()
        assert env.pending_timers()[0].delay_ms == 77.0
        env.fire_next_timer("S2:election-timeout")
        # Second wait (attempt 1) falls back to the configuration timeout.
        timers = env.pending_timers()
        assert any(t.delay_ms == node.configuration.timer_period_ms for t in timers)


class TestConfigurationClockVoteGate:
    def test_rejects_candidate_with_stale_clock(self):
        configuration = Configuration(priority=2, timer_period_ms=150.0, conf_clock=5)
        node, env = make_node(node_id=2, size=5, configuration=configuration)
        node.start()
        node.on_message(
            3,
            EscapeRequestVoteRequest(term=10, candidate_id=3, conf_clock=3, priority=3),
        )
        response = env.sent_to(3)[0]
        assert not response.vote_granted

    def test_grants_candidate_with_equal_or_newer_clock(self):
        configuration = Configuration(priority=2, timer_period_ms=150.0, conf_clock=5)
        node, env = make_node(node_id=2, size=5, configuration=configuration)
        node.start()
        node.on_message(
            3,
            EscapeRequestVoteRequest(term=10, candidate_id=3, conf_clock=5, priority=3),
        )
        assert env.sent_to(3)[0].vote_granted

    def test_plain_raft_candidates_are_not_gated(self):
        # Lemma 2: an ESCAPE voter cannot distinguish a Raft campaign; mixed
        # clusters therefore remain live.
        from repro.raft.messages import RequestVoteRequest

        node, env = make_node(node_id=2, size=5)
        node.start()
        node.on_message(3, RequestVoteRequest(term=2, candidate_id=3))
        assert env.sent_to(3)[0].vote_granted


class TestPpfOnLeader:
    def test_leader_creates_patrol_with_dominating_clock(self):
        node, env = make_leader(node_id=5, size=5)
        assert node.patrol is not None
        assert node.patrol.conf_clock >= node.configuration.conf_clock + 1

    def test_heartbeats_piggyback_configurations(self):
        node, env = make_leader(node_id=5, size=5)
        env.fire_next_timer("S5:heartbeat")
        requests = env.sent_payloads(EscapeAppendEntriesRequest)
        assert len(requests) == 4
        assert all(request.new_config is not None for request in requests)
        priorities = {request.new_config.priority for request in requests}
        assert priorities == {2, 3, 4, 5}

    def test_follower_replies_feed_the_patrol(self):
        node, env = make_leader(node_id=5, size=5)
        reply = EscapeAppendEntriesResponse(
            term=node.current_term,
            follower_id=2,
            success=True,
            match_index=0,
            config_status=None,
        )
        node.on_message(2, reply)
        assert node.patrol.responsiveness_of(2).has_replied

    def test_plain_raft_replies_also_feed_the_patrol(self):
        from repro.raft.messages import AppendEntriesResponse

        node, env = make_leader(node_id=5, size=5)
        node.on_message(
            3,
            AppendEntriesResponse(
                term=node.current_term, follower_id=3, success=True, match_index=4
            ),
        )
        assert node.patrol.responsiveness_of(3).log_index == 4

    def test_single_node_cluster_has_no_patrol(self):
        env = FakeEnvironment(node_id=1)
        node = EscapeNode(
            node_id=1,
            cluster=small_cluster(1),
            env=env,
            protocol_config=fast_protocol_config(),
        )
        node.start()
        env.fire_next_timer("S1:election-timeout")
        assert node.role is Role.LEADER
        assert node.patrol is None


class TestPpfOnFollower:
    def test_follower_adopts_configuration_from_heartbeat(self):
        node, env = make_node(node_id=2, size=5)
        node.start()
        new_config = Configuration(priority=5, timer_period_ms=100.0, conf_clock=3)
        node.on_message(
            1,
            EscapeAppendEntriesRequest(term=1, leader_id=1, new_config=new_config),
        )
        assert node.configuration == new_config
        assert node.configuration_updates == 1

    def test_new_configuration_applies_to_next_timeout(self):
        node, env = make_node(node_id=2, size=5)
        node.start()
        new_config = Configuration(priority=5, timer_period_ms=100.0, conf_clock=3)
        node.on_message(
            1,
            EscapeAppendEntriesRequest(term=1, leader_id=1, new_config=new_config),
        )
        rearmed = [
            timer
            for timer in env.pending_timers()
            if timer.label == "S2:election-timeout"
        ]
        assert rearmed and rearmed[-1].delay_ms == 100.0

    def test_stale_configuration_is_not_adopted(self):
        configuration = Configuration(priority=4, timer_period_ms=120.0, conf_clock=7)
        node, env = make_node(node_id=2, size=5, configuration=configuration)
        node.start()
        stale = Configuration(priority=5, timer_period_ms=100.0, conf_clock=3)
        node.on_message(
            1, EscapeAppendEntriesRequest(term=1, leader_id=1, new_config=stale)
        )
        assert node.configuration == configuration

    def test_heartbeat_without_configuration_changes_nothing(self):
        node, env = make_node(node_id=2, size=5)
        node.start()
        before = node.configuration
        node.on_message(1, EscapeAppendEntriesRequest(term=1, leader_id=1))
        assert node.configuration == before

    def test_reply_reports_config_status(self):
        node, env = make_node(node_id=2, size=5)
        store = node.store
        node.start()
        node.log.append_entry(LogEntry(term=0, index=1, command="x"))
        node.on_message(1, EscapeAppendEntriesRequest(term=1, leader_id=1, prev_log_index=1, prev_log_term=0))
        reply = env.sent_to(1)[0]
        assert isinstance(reply, EscapeAppendEntriesResponse)
        assert reply.config_status is not None
        assert reply.config_status.log_index == 1
        assert reply.config_status.conf_clock == node.configuration.conf_clock

    def test_describe_and_snapshot_state_mention_configuration(self):
        node, _ = make_node(node_id=3, size=5)
        assert "π(P=3" in node.describe()
        state = node.snapshot_state()
        assert state["priority"] == 3
        assert state["node_id"] == 3

"""Unit tests for the cluster / protocol configuration dataclasses."""

import pytest

from repro.common.config import (
    ClusterConfig,
    ProtocolConfig,
    RaftTimeoutConfig,
    ScaParameters,
)
from repro.common.errors import ConfigurationError


class TestClusterConfig:
    def test_of_size_builds_canonical_membership(self):
        config = ClusterConfig.of_size(5)
        assert config.server_ids == (1, 2, 3, 4, 5)
        assert config.size == 5

    def test_quorum_size_matches_paper_example(self):
        # Section VI-B: in an 8-server cluster, the quorum size is 5.
        assert ClusterConfig.of_size(8).quorum_size == 5

    def test_quorum_size_for_odd_clusters(self):
        assert ClusterConfig.of_size(5).quorum_size == 3
        assert ClusterConfig.of_size(7).quorum_size == 4

    def test_fault_tolerance_is_floor_half(self):
        assert ClusterConfig.of_size(5).fault_tolerance == 2
        assert ClusterConfig.of_size(8).fault_tolerance == 3

    def test_peers_of_excludes_self(self):
        config = ClusterConfig.of_size(4)
        assert config.peers_of(2) == (1, 3, 4)

    def test_peers_of_unknown_member_raises(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig.of_size(3).peers_of(9)

    def test_contains_and_iteration(self):
        config = ClusterConfig.of_size(3)
        assert 2 in config
        assert 9 not in config
        assert list(config) == [1, 2, 3]
        assert len(config) == 3

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(server_ids=(1, 2, 2))

    def test_rejects_non_positive_ids(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(server_ids=(0, 1))

    def test_rejects_empty_membership(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(server_ids=())


class TestRaftTimeoutConfig:
    def test_defaults_to_paper_recommended_range(self):
        config = RaftTimeoutConfig()
        assert (config.timeout_min_ms, config.timeout_max_ms) == (1500.0, 3000.0)

    def test_randomness_is_range_width(self):
        assert RaftTimeoutConfig(1500.0, 1800.0).randomness_ms == 300.0

    def test_with_range_returns_modified_copy(self):
        base = RaftTimeoutConfig()
        widened = base.with_range(1500.0, 6000.0)
        assert widened.timeout_max_ms == 6000.0
        assert base.timeout_max_ms == 3000.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            RaftTimeoutConfig(2000.0, 1500.0)


class TestScaParameters:
    def test_paper_example_from_section_iv(self):
        # 10-server cluster, baseTime=100ms, k=10ms: S2 -> 180ms, S10 -> 100ms.
        params = ScaParameters(base_time_ms=100.0, k_ms=10.0)
        assert params.election_timeout_ms(priority=2, cluster_size=10) == 180.0
        assert params.election_timeout_ms(priority=10, cluster_size=10) == 100.0

    def test_highest_priority_gets_base_time(self):
        params = ScaParameters(base_time_ms=1500.0, k_ms=500.0)
        assert params.fastest_timeout_ms(cluster_size=8) == 1500.0

    def test_lowest_priority_gets_longest_timeout(self):
        params = ScaParameters(base_time_ms=1500.0, k_ms=500.0)
        assert params.slowest_timeout_ms(cluster_size=8) == 1500.0 + 500.0 * 7

    def test_timeouts_strictly_decrease_with_priority(self):
        params = ScaParameters(base_time_ms=1500.0, k_ms=500.0)
        timeouts = [params.election_timeout_ms(p, 16) for p in range(1, 17)]
        assert timeouts == sorted(timeouts, reverse=True)
        assert len(set(timeouts)) == 16

    def test_rejects_priority_outside_cluster(self):
        params = ScaParameters()
        with pytest.raises(ConfigurationError):
            params.election_timeout_ms(priority=9, cluster_size=8)
        with pytest.raises(ConfigurationError):
            params.election_timeout_ms(priority=0, cluster_size=8)


class TestProtocolConfig:
    def test_paper_defaults(self):
        config = ProtocolConfig.paper_defaults()
        assert config.raft_timeouts.timeout_min_ms == 1500.0
        assert config.raft_timeouts.timeout_max_ms == 3000.0
        assert config.sca.base_time_ms == 1500.0
        assert config.sca.k_ms == 500.0

    def test_rejects_heartbeat_slower_than_election_timeout(self):
        with pytest.raises(ConfigurationError, match="heartbeat_interval_ms"):
            ProtocolConfig(
                heartbeat_interval_ms=2000.0,
                raft_timeouts=RaftTimeoutConfig(1500.0, 3000.0),
            )

    def test_rejects_vote_retry_slower_than_election_timeout(self):
        with pytest.raises(ConfigurationError, match="vote_retry_interval_ms"):
            ProtocolConfig(
                vote_retry_interval_ms=1800.0,
                raft_timeouts=RaftTimeoutConfig(1500.0, 3000.0),
            )

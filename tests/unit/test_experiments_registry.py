"""Conformance suite for the experiment registry.

Every registered :class:`ExperimentSpec` is exercised generically: a quick
run through :func:`run_experiment` returns a picklable envelope whose report
matches the spec's reporter, the exporter binding round-trips through the
generic export path, and the registry-derived rejection messages cover
unknown names, unsupported sweep-wide options and unsweepable protocols.
Registering an eleventh experiment automatically subjects it to this suite.
"""

import pickle
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import (
    ExperimentRun,
    ExperimentSpec,
    registry,
    run_experiment,
)
from repro.experiments.export import load_run, save_run
from repro.experiments.spec import CAPABILITIES, EXPORT_KINDS, ExporterBinding

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Tiny run counts so the whole registry smokes in seconds.
QUICK_RUNS = {"fig3": 2, "fig4": 2, "ablation-k": 2, "adapter-redis": 2}


class TestSpecConformance:
    @pytest.mark.parametrize("name", registry.names())
    def test_spec_fields_are_complete(self, name):
        spec = registry.get(name)
        assert spec.name == name
        assert spec.title and spec.paper_ref and spec.description
        assert callable(spec.run) and callable(spec.reporter)
        assert spec.default_runs >= 1
        assert set(spec.quick_params) <= set(spec.params)
        assert set(spec.capabilities) <= set(CAPABILITIES)
        # Every built-in experiment must be persistable via --output.
        assert spec.exporter is not None
        assert spec.exporter.kind in EXPORT_KINDS

    @pytest.mark.parametrize("name", registry.names())
    def test_spec_pickles_by_reference(self, name):
        spec = registry.get(name)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.name == spec.name
        assert clone.run is spec.run
        assert clone.reporter is spec.reporter
        assert clone.params == spec.params

    def test_invalid_specs_are_rejected(self):
        good = registry.get("fig3")
        with pytest.raises(ConfigurationError, match="whitespace"):
            ExperimentSpec(
                name="bad name", title="t", run=good.run, reporter=good.reporter
            )
        with pytest.raises(ConfigurationError, match="quick_params"):
            ExperimentSpec(
                name="ok",
                title="t",
                run=good.run,
                reporter=good.reporter,
                quick_params={"no_such_param": 1},
            )
        with pytest.raises(ConfigurationError, match="exporter kind"):
            ExporterBinding(kind="no-such-kind", extract=lambda result: result)
        # Names become export file names; path syntax must be rejected.
        with pytest.raises(ConfigurationError, match="path"):
            ExperimentSpec(
                name="a/b", title="t", run=good.run, reporter=good.reporter
            )
        with pytest.raises(ConfigurationError, match="path"):
            ExperimentSpec(
                name="..escape", title="t", run=good.run, reporter=good.reporter
            )
        with pytest.raises(ConfigurationError, match="capability_overrides"):
            ExperimentSpec(
                name="ok",
                title="t",
                run=good.run,
                reporter=good.reporter,
                capability_overrides={"scenario": "no-such-param"},
            )
        with pytest.raises(ConfigurationError, match="capability_overrides"):
            ExperimentSpec(
                name="ok",
                title="t",
                run=good.run,
                reporter=good.reporter,
                params={"knob": 1},
                capability_overrides={"no-such-capability": "knob"},
            )


class TestRunExperiment:
    @pytest.mark.parametrize("name", registry.names())
    def test_quick_run_returns_conformant_envelope(self, name):
        spec = registry.get(name)
        run = run_experiment(name, runs=QUICK_RUNS.get(name, 1), seed=3, quick=True)
        assert isinstance(run, ExperimentRun)
        assert run.name == name and run.title == spec.title
        assert run.seed == 3 and run.quick
        assert run.report == spec.reporter(run.result)
        assert run.elapsed_s >= 0.0
        # Quick-mode overrides land in the resolved parameter record.
        for key, value in spec.quick_params.items():
            assert run.parameters[key] == value
        # The envelope is plain data: it must survive pickling unchanged.
        clone = pickle.loads(pickle.dumps(run))
        assert clone.report == run.report
        assert clone.parameters == run.parameters
        assert clone.notes == run.notes
        # The exporter binding understands the result it was registered for.
        payload = spec.exporter.extract(run.result)
        assert payload

    def test_unknown_experiment_rejected_with_registered_list(self):
        with pytest.raises(ConfigurationError, match="unknown experiment") as info:
            run_experiment("no-such-experiment")
        assert "fig3" in str(info.value)

    def test_unsupported_scenario_rejected(self):
        with pytest.raises(
            ConfigurationError, match="--scenario is not supported by: fig3"
        ):
            run_experiment("fig3", scenario="paper-default")

    def test_unsupported_plan_rejected(self):
        with pytest.raises(
            ConfigurationError, match="--plan is not supported by: wan"
        ):
            run_experiment("wan", plan="chaos-storm")

    def test_unsupported_protocols_rejected(self):
        with pytest.raises(
            ConfigurationError, match="--protocols is not supported by: fig3"
        ):
            run_experiment("fig3", protocols=("raft",))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            run_experiment("fig9", protocols=("paxos",))

    def test_liveness_free_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="livelock"):
            run_experiment("fig9", protocols=("raft-fixed", "escape"))

    def test_unknown_parameter_override_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            run_experiment("fig3", cluster_sizes=(3,))

    def test_min_runs_floor_and_ignored_workers_are_noted(self):
        run = run_experiment("adapter-redis", runs=2, seed=0, workers=4)
        assert run.runs == 50
        assert run.workers is None
        assert any("raised" in note for note in run.notes)
        assert any("--workers ignored" in note for note in run.notes)

    def test_capability_value_supersedes_param_in_recorded_metadata(self):
        """A wan run narrowed to one scenario must not claim the full grid."""
        run = run_experiment(
            "wan", runs=1, seed=0, quick=True, scenario="paper-default"
        )
        assert run.parameters["scenario"] == "paper-default"
        assert "conditions" not in run.parameters
        assert set(run.result.by_label) == {
            f"{protocol}+paper-default" for protocol in ("raft", "zraft", "escape")
        }
        # Capability values are recorded only when they were passed.
        assert "protocols" not in run.parameters and "plan" not in run.parameters

    def test_profile_phases_land_in_the_envelope(self):
        run = run_experiment("fig3", runs=1, seed=0, quick=True)
        assert set(run.profile) == {"build", "sweep", "report"}
        assert all(seconds >= 0.0 for seconds in run.profile.values())
        # elapsed_s keeps its historical meaning: the sweep phase itself.
        assert run.elapsed_s == run.profile["sweep"]
        assert run.metadata()["profile"] == {
            phase: round(seconds, 3) for phase, seconds in run.profile.items()
        }

    def test_trace_out_archives_one_episode_per_label(self, tmp_path):
        import json

        run = run_experiment(
            "fig3", runs=1, seed=0, quick=True, trace=str(tmp_path)
        )
        assert run.parameters["trace"] == str(tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert set(manifest["labels"]) == set(run.result.by_range)
        for entry in manifest["labels"].values():
            assert (tmp_path / entry["file"]).exists()
            assert entry["records"] > 0

    def test_engine_selection_is_recorded_and_scoped_to_the_run(self):
        from repro.sim import engines

        before = engines.default_engine_name()
        run = run_experiment("fig3", runs=1, seed=0, quick=True, engine="flat")
        assert run.engine == "flat"
        assert run.metadata()["engine"] == "flat"
        # The selection must not leak past the run.
        assert engines.default_engine_name() == before

    def test_engine_defaults_to_the_process_default(self, monkeypatch):
        from repro.sim import engines

        # Neutralize any ambient REPRO_ENGINE (the CI matrix sets it) so the
        # resolution order under test is override > env > classic.
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        run = run_experiment("fig3", runs=1, seed=0, quick=True)
        assert run.engine == "classic"
        engines.set_default_engine("flat")
        try:
            assert (
                run_experiment("fig3", runs=1, seed=0, quick=True).engine == "flat"
            )
        finally:
            engines.set_default_engine(None)

    def test_unknown_engine_rejected_with_registered_list(self):
        with pytest.raises(ConfigurationError, match="unknown engine") as info:
            run_experiment("fig3", runs=1, seed=0, quick=True, engine="warp")
        assert "classic" in str(info.value) and "flat" in str(info.value)

    def test_results_are_engine_invariant(self):
        classic = run_experiment("fig3", runs=2, seed=5, quick=True, engine="classic")
        flat = run_experiment("fig3", runs=2, seed=5, quick=True, engine="flat")
        assert flat.report == classic.report

    def test_quick_overrides_are_declared_not_hardcoded(self):
        assert registry.get("fig9").resolved_params(quick=True)["sizes"] == (8, 16, 32)
        assert registry.get("wan").resolved_params(quick=True)["cluster_size"] == 6
        assert registry.get("fig3").resolved_params(quick=True) == dict(
            registry.get("fig3").params
        )


class TestGenericExport:
    def test_election_kind_round_trips(self, tmp_path):
        run = run_experiment("fig3", runs=2, seed=5, timeout_ranges=((500.0, 900.0),))
        paths = save_run(run, tmp_path)
        assert paths["csv"].exists()
        assert paths["report"].read_text() == run.report + "\n"
        metadata, loaded = load_run("fig3", tmp_path)
        assert metadata["seed"] == 5 and metadata["export_kind"] == "election"
        original = registry.get("fig3").exporter.extract(run.result)
        assert set(loaded) == set(original)
        for label, measurement_set in original.items():
            assert loaded[label].measurements == measurement_set.measurements

    def test_availability_kind_round_trips(self, tmp_path):
        run = run_experiment(
            "avail",
            runs=1,
            seed=5,
            quick=True,
            horizon_ms=10_000.0,
            protocols=("raft",),
        )
        save_run(run, tmp_path)
        metadata, loaded = load_run("avail", tmp_path)
        assert metadata["export_kind"] == "availability"
        original = registry.get("avail").exporter.extract(run.result)
        for label, availability_set in original.items():
            assert loaded[label].measurements == availability_set.measurements

    def test_rows_kind_round_trips(self, tmp_path):
        run = run_experiment("adapter-redis", runs=50, seed=5)
        save_run(run, tmp_path)
        metadata, loaded = load_run("adapter-redis", tmp_path)
        assert metadata["export_kind"] == "rows"
        assert loaded == registry.get("adapter-redis").exporter.extract(run.result)

    def test_loading_a_missing_run_fails_fast(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such results file"):
            load_run("fig3", tmp_path)


class TestRegistryTables:
    def test_text_table_lists_every_experiment(self):
        table = registry.registry_table()
        for name in registry.names():
            assert name in table

    def test_markdown_table_lists_every_experiment(self):
        table = registry.registry_table_markdown()
        for spec in registry.specs():
            assert f"`{spec.name}`" in table
            assert spec.title in table

    def test_experiments_md_registry_table_is_up_to_date(self):
        """EXPERIMENTS.md embeds the generated table; it must not drift."""
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        lines = text.splitlines()
        begin = next(
            index for index, line in enumerate(lines) if "registry-table:begin" in line
        )
        end = next(
            index for index, line in enumerate(lines) if "registry-table:end" in line
        )
        embedded = "\n".join(lines[begin + 1 : end])
        assert embedded == registry.registry_table_markdown(), (
            "EXPERIMENTS.md registry table is stale; regenerate it with "
            "PYTHONPATH=src python -c 'from repro.experiments import registry; "
            "print(registry.registry_table_markdown())'"
        )


def _dummy_run(**kwargs):
    return kwargs


def _dummy_report(result):
    return "dummy report"


class TestRegisterSemantics:
    def test_duplicate_registration_needs_replace(self):
        spec = ExperimentSpec(
            name="dummy-experiment",
            title="Dummy",
            paper_ref="--",
            description="registration semantics fixture",
            run=_dummy_run,
            reporter=_dummy_report,
        )
        registry.register(spec)
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                registry.register(spec)
            replacement = ExperimentSpec(
                name="dummy-experiment",
                title="Dummy v2",
                paper_ref="--",
                description="registration semantics fixture",
                run=_dummy_run,
                reporter=_dummy_report,
            )
            assert registry.register(replacement, replace=True).title == "Dummy v2"
            assert registry.titles()["dummy-experiment"] == "Dummy v2"
        finally:
            registry.unregister("dummy-experiment")
        assert not registry.is_registered("dummy-experiment")

    def test_registered_dummy_is_runnable_through_the_one_entry_point(self):
        registry.register(
            ExperimentSpec(
                name="dummy-experiment",
                title="Dummy",
                paper_ref="--",
                description="one-entry-point fixture",
                run=_dummy_run,
                reporter=_dummy_report,
                default_runs=7,
                params={"knob": "default"},
                supports_workers=False,
            )
        )
        try:
            run = run_experiment("dummy-experiment", knob="turned")
            assert run.runs == 7
            assert run.result == {"runs": 7, "seed": 0, "knob": "turned"}
            assert run.report == "dummy report"
        finally:
            registry.unregister("dummy-experiment")

"""Unit tests for the JSON message codec used by the asyncio runtime."""

import pytest

from repro.common.errors import ProtocolError
from repro.escape.configuration import ConfigStatus, Configuration
from repro.escape.messages import (
    EscapeAppendEntriesRequest,
    EscapeAppendEntriesResponse,
    EscapeRequestVoteRequest,
)
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
    RequestVoteResponse,
)
from repro.runtime.codec import (
    decode_datagram,
    decode_message,
    encode_datagram,
    encode_message,
)
from repro.statemachine.kvstore import PutCommand
from repro.storage.log import LogEntry


def round_trip(message):
    return decode_message(encode_message(message))


class TestRaftMessages:
    def test_request_vote_round_trip(self):
        message = RequestVoteRequest(term=4, candidate_id=2, last_log_index=7, last_log_term=3)
        assert round_trip(message) == message

    def test_request_vote_response_round_trip(self):
        message = RequestVoteResponse(term=4, voter_id=5, vote_granted=True)
        assert round_trip(message) == message

    def test_append_entries_round_trip_with_entries(self):
        message = AppendEntriesRequest(
            term=2,
            leader_id=1,
            prev_log_index=3,
            prev_log_term=1,
            entries=(
                LogEntry(term=2, index=4, command={"op": "put", "key": "a", "value": 1}),
                LogEntry(term=2, index=5, command=None),
            ),
            leader_commit=3,
        )
        decoded = round_trip(message)
        assert decoded == message
        assert type(decoded) is AppendEntriesRequest

    def test_append_entries_response_round_trip(self):
        message = AppendEntriesResponse(term=2, follower_id=3, success=False, match_index=9)
        assert round_trip(message) == message

    def test_dataclass_commands_are_encoded_via_to_dict(self):
        message = AppendEntriesRequest(
            term=1,
            leader_id=1,
            entries=(LogEntry(term=1, index=1, command=PutCommand("k", 7)),),
        )
        decoded = round_trip(message)
        assert decoded.entries[0].command == {"op": "put", "key": "k", "value": 7}


class TestEscapeMessages:
    def test_escape_vote_request_round_trip_preserves_subclass(self):
        message = EscapeRequestVoteRequest(
            term=9, candidate_id=4, last_log_index=2, last_log_term=1, conf_clock=6, priority=5
        )
        decoded = round_trip(message)
        assert decoded == message
        assert type(decoded) is EscapeRequestVoteRequest

    def test_escape_append_entries_with_configuration(self):
        message = EscapeAppendEntriesRequest(
            term=3,
            leader_id=2,
            new_config=Configuration(priority=5, timer_period_ms=1500.0, conf_clock=8),
        )
        decoded = round_trip(message)
        assert decoded.new_config == message.new_config
        assert type(decoded) is EscapeAppendEntriesRequest

    def test_escape_append_entries_without_configuration(self):
        message = EscapeAppendEntriesRequest(term=3, leader_id=2, new_config=None)
        assert round_trip(message).new_config is None

    def test_escape_response_with_status(self):
        message = EscapeAppendEntriesResponse(
            term=3,
            follower_id=4,
            success=True,
            match_index=11,
            config_status=ConfigStatus(log_index=11, timer_period_ms=2000.0, conf_clock=8),
        )
        decoded = round_trip(message)
        assert decoded == message


class TestDatagrams:
    def test_datagram_round_trip(self):
        message = RequestVoteResponse(term=1, voter_id=2, vote_granted=False)
        src, decoded = decode_datagram(encode_datagram(7, message))
        assert src == 7
        assert decoded == message

    def test_malformed_datagram_rejected(self):
        with pytest.raises(ProtocolError):
            decode_datagram(b"\xff\x00 not json")

    def test_unknown_message_types_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(object())
        with pytest.raises(ProtocolError):
            decode_message({"type": "Mystery", "term": 1})

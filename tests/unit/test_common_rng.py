"""Unit tests for the deterministic random-stream tree."""

from repro.common.rng import SeedSequence, derive_seed


class TestDeriveSeed:
    def test_is_deterministic(self):
        assert derive_seed(42, "latency") == derive_seed(42, "latency")

    def test_differs_across_names(self):
        assert derive_seed(42, "latency") != derive_seed(42, "fault")

    def test_differs_across_root_seeds(self):
        assert derive_seed(1, "latency") != derive_seed(2, "latency")

    def test_path_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")


class TestSeedSequence:
    def test_same_stream_name_reproduces_draws(self):
        first = SeedSequence(7).stream("node", 3)
        second = SeedSequence(7).stream("node", 3)
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_different_streams_are_independent(self):
        seeds = SeedSequence(7)
        a = seeds.stream("node", 1)
        b = seeds.stream("node", 2)
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_child_namespaces_do_not_collide_with_parent_streams(self):
        seeds = SeedSequence(7)
        direct = seeds.stream("run", 0, "latency")
        via_child = seeds.child("run", 0).stream("latency")
        assert direct.random() == via_child.random()

    def test_spawn_creates_numbered_children(self):
        children = SeedSequence(1).spawn(3, "run")
        assert [child.path for child in children] == [
            ("run", 0),
            ("run", 1),
            ("run", 2),
        ]

    def test_integers_are_deterministic_and_distinct(self):
        values = SeedSequence(5).integers(4, "ids")
        again = SeedSequence(5).integers(4, "ids")
        assert values == again
        assert len(set(values)) == 4

    def test_from_values_builds_subtree(self):
        assert SeedSequence.from_values(3, ["a", 1]).path == ("a", 1)

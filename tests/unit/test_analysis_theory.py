"""Unit tests for the analytical models in repro.analysis.theory."""

import pytest

from repro.analysis.theory import (
    escape_expected_detection_ms,
    expected_minimum_uniform,
    raft_expected_detection_ms,
    simultaneous_timeout_probability,
    split_vote_probability_two_candidates,
)
from repro.common.errors import ConfigurationError


class TestExpectedMinimumUniform:
    def test_single_sample_is_the_midpoint(self):
        assert expected_minimum_uniform(0.0, 100.0, 1) == 50.0

    def test_minimum_decreases_with_more_samples(self):
        values = [expected_minimum_uniform(1500.0, 3000.0, n) for n in (1, 4, 16, 64)]
        assert values == sorted(values, reverse=True)
        assert values[-1] > 1500.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_minimum_uniform(0.0, 10.0, 0)
        with pytest.raises(ConfigurationError):
            expected_minimum_uniform(10.0, 0.0, 1)


class TestDetectionModels:
    def test_raft_detection_shrinks_with_cluster_size(self):
        small = raft_expected_detection_ms(1500.0, 3000.0, followers=7)
        large = raft_expected_detection_ms(1500.0, 3000.0, followers=127)
        assert large < small
        assert large > 1500.0 - 1.0

    def test_escape_detection_is_scale_independent_base_time(self):
        assert escape_expected_detection_ms(1500.0) == 1500.0
        assert escape_expected_detection_ms(1500.0, heartbeat_interval_ms=150.0) == 1425.0

    def test_raft_detection_accounts_for_heartbeat_phase(self):
        with_phase = raft_expected_detection_ms(
            1500.0, 3000.0, followers=7, heartbeat_interval_ms=150.0
        )
        without_phase = raft_expected_detection_ms(1500.0, 3000.0, followers=7)
        assert without_phase - with_phase == pytest.approx(75.0)


class TestSimultaneousTimeoutProbability:
    def test_probability_grows_with_cluster_size(self):
        values = [
            simultaneous_timeout_probability(1500.0, 3000.0, followers=n, window_ms=150.0)
            for n in (4, 16, 64, 128)
        ]
        assert values == sorted(values)
        assert 0.0 < values[0] < values[-1] <= 1.0

    def test_probability_shrinks_with_more_randomness(self):
        # The trade-off of Section III: widening the range reduces collisions.
        narrow = simultaneous_timeout_probability(1500.0, 1800.0, 4, window_ms=150.0)
        wide = simultaneous_timeout_probability(1500.0, 6000.0, 4, window_ms=150.0)
        assert wide < narrow

    def test_degenerate_cases(self):
        assert simultaneous_timeout_probability(1500.0, 3000.0, 1, 150.0) == 0.0
        assert simultaneous_timeout_probability(1500.0, 1500.0, 5, 150.0) == 1.0


class TestSplitVoteProbability:
    def test_two_candidates_in_a_five_server_cluster(self):
        # 5 servers, leader crashed, 2 candidates, 2 free voters: the vote
        # splits unless one candidate receives both free votes (probability
        # 1/2), so the split probability is 1/2.
        assert split_vote_probability_two_candidates(5) == pytest.approx(0.5)

    def test_probability_shrinks_with_cluster_size_for_two_candidates(self):
        # With exactly two candidates, more free voters make an even split
        # less likely (binomial concentration); large clusters suffer more
        # split votes because *more* candidates collide, which is captured by
        # simultaneous_timeout_probability, not by this function.
        values = [split_vote_probability_two_candidates(n) for n in (5, 9, 17, 33)]
        assert values == sorted(values, reverse=True)
        assert 0.0 < values[-1] < values[0] <= 0.5

    def test_tiny_clusters_cannot_split(self):
        assert split_vote_probability_two_candidates(2) == 0.0

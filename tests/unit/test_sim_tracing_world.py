"""Unit tests for the tracer and the simulation world."""

from repro.sim.tracing import Tracer
from repro.sim.world import SimulationWorld


class TestTracer:
    def test_records_are_kept_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.record(2.0, "b", node=3, detail_key="x")
        assert [record.category for record in tracer] == ["a", "b"]
        assert tracer.records[1].detail == {"detail_key": "x"}

    def test_filter_by_category_node_and_prefix(self):
        tracer = Tracer()
        tracer.record(1.0, "election.start", node=1)
        tracer.record(2.0, "election.won", node=2)
        tracer.record(3.0, "net.drop", node=1)
        assert len(tracer.filter(category="election.won")) == 1
        assert len(tracer.filter(prefix="election.")) == 2
        assert len(tracer.filter(node=1)) == 2
        assert len(tracer.filter(prefix="election.", node=1)) == 1

    def test_count_by_category(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record(0.0, "x")
        assert tracer.count("x") == 3
        assert tracer.count("y") == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "a")
        assert len(tracer) == 0

    def test_capacity_caps_recording(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.record(float(index), "x")
        assert len(tracer) == 2

    def test_capacity_drops_are_counted_not_silent(self):
        tracer = Tracer(capacity=2)
        assert tracer.dropped_count == 0
        for index in range(5):
            tracer.record(float(index), "x")
        assert tracer.dropped_count == 3
        # The kept records are the oldest (the ring complement lives in
        # repro.obs.trace.RingTraceSink).
        assert [record.time_ms for record in tracer] == [0.0, 1.0]

    def test_clear_resets(self):
        tracer = Tracer(capacity=1)
        tracer.record(1.0, "a")
        tracer.record(2.0, "b")
        assert tracer.dropped_count == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped_count == 0

    def test_timeline_renders_one_line_per_record(self):
        tracer = Tracer()
        tracer.record(1.0, "a", node=2, foo="bar")
        tracer.record(2.0, "b")
        timeline = tracer.timeline()
        assert "S2" in timeline
        assert "foo=bar" in timeline
        assert len(timeline.splitlines()) == 2

    def test_timeline_limit_truncates_from_the_front(self):
        tracer = Tracer()
        for index in range(4):
            tracer.record(float(index), f"cat{index}")
        limited = tracer.timeline(limit=2)
        assert len(limited.splitlines()) == 2
        assert "cat0" in limited and "cat1" in limited
        assert "cat3" not in limited

    def test_timeline_discloses_capacity_drops(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.record(float(index), "x")
        timeline = tracer.timeline()
        lines = timeline.splitlines()
        assert len(lines) == 3
        assert lines[-1] == "... 3 record(s) dropped at capacity 2"


class TestSimulationWorld:
    def test_world_wires_clock_and_scheduler_together(self):
        world = SimulationWorld(seed=3)
        fired = []
        world.scheduler.call_after(25.0, lambda: fired.append(world.now()))
        world.run_for(100.0)
        assert fired == [25.0]
        assert world.now() == 100.0

    def test_trace_helper_stamps_current_time(self):
        world = SimulationWorld(seed=3)
        world.scheduler.call_after(10.0, lambda: world.trace("tick", node=1))
        world.run_for(20.0)
        record = world.tracer.records[0]
        assert record.time_ms == 10.0
        assert record.node == 1

    def test_same_seed_gives_identical_streams(self):
        a = SimulationWorld(seed=9).seeds.stream("latency")
        b = SimulationWorld(seed=9).seeds.stream("latency")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_trace_can_be_disabled(self):
        world = SimulationWorld(seed=1, trace=False)
        world.trace("anything")
        assert len(world.tracer) == 0

"""Unit tests for the simulated network and partitions."""

import pytest

from repro.common.errors import NetworkError
from repro.net.faults import BroadcastOmissionFault, PacketLossFault
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import SimulatedNetwork
from repro.net.partition import PartitionManager
from repro.sim.world import SimulationWorld


def make_network(members=(1, 2, 3), latency=None, fault=None, seed=0):
    world = SimulationWorld(seed=seed)
    network = SimulatedNetwork(world, members, latency=latency, fault=fault)
    inboxes = {member: [] for member in members}
    for member in members:
        network.register(member, lambda src, payload, member=member: inboxes[member].append((src, payload)))
    return world, network, inboxes


class TestDelivery:
    def test_message_is_delivered_after_sampled_latency(self):
        world, network, inboxes = make_network(latency=ConstantLatency(50.0))
        envelope = network.send(1, 2, "hello")
        assert envelope is not None and envelope.latency_ms == 50.0
        assert inboxes[2] == []
        world.run_for(49.0)
        assert inboxes[2] == []
        world.run_for(2.0)
        assert inboxes[2] == [(1, "hello")]

    def test_latency_is_sampled_within_model_range(self):
        world, network, inboxes = make_network(latency=UniformLatency(100.0, 200.0))
        envelopes = [network.send(1, 2, index) for index in range(50)]
        assert all(100.0 <= envelope.latency_ms <= 200.0 for envelope in envelopes)

    def test_stats_count_sent_and_delivered(self):
        world, network, inboxes = make_network(latency=ConstantLatency(10.0))
        network.send(1, 2, "a")
        network.send(2, 3, "b")
        world.run_for(20.0)
        assert network.stats.sent == 2
        assert network.stats.delivered == 2
        assert network.stats.dropped == 0

    def test_per_type_stats(self):
        world, network, _ = make_network(latency=ConstantLatency(1.0))
        network.send(1, 2, "x")
        network.send(1, 2, 5)
        assert network.stats.per_type_sent == {"str": 1, "int": 1}

    def test_unknown_member_rejected(self):
        _, network, _ = make_network()
        with pytest.raises(NetworkError):
            network.send(1, 99, "x")
        with pytest.raises(NetworkError):
            network.register(99, lambda src, payload: None)

    def test_same_seed_reproduces_latencies(self):
        def run(seed):
            world, network, _ = make_network(latency=UniformLatency(100.0, 200.0), seed=seed)
            return [network.send(1, 2, i).latency_ms for i in range(10)]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestDisconnection:
    def test_disconnected_destination_drops_in_flight_messages(self):
        world, network, inboxes = make_network(latency=ConstantLatency(100.0))
        network.send(1, 2, "late")
        network.disconnect(2)
        world.run_for(200.0)
        assert inboxes[2] == []
        assert network.stats.dropped_disconnected == 1

    def test_messages_already_in_flight_from_a_crashed_sender_still_deliver(self):
        # A killed process cannot recall packets already on the wire.
        world, network, inboxes = make_network(latency=ConstantLatency(100.0))
        network.send(1, 2, "heartbeat")
        network.disconnect(1)
        world.run_for(200.0)
        assert inboxes[2] == [(1, "heartbeat")]

    def test_disconnected_sender_cannot_send_new_messages(self):
        world, network, inboxes = make_network(latency=ConstantLatency(10.0))
        network.disconnect(1)
        assert network.send(1, 2, "x") is None
        world.run_for(50.0)
        assert inboxes[2] == []

    def test_reconnect_restores_delivery(self):
        world, network, inboxes = make_network(latency=ConstantLatency(10.0))
        network.disconnect(2)
        network.reconnect(2)
        network.send(1, 2, "back")
        world.run_for(20.0)
        assert inboxes[2] == [(1, "back")]

    def test_is_connected_reflects_state(self):
        _, network, _ = make_network()
        assert network.is_connected(1)
        network.disconnect(1)
        assert not network.is_connected(1)


class TestBroadcast:
    def test_broadcast_builds_payload_per_target(self):
        world, network, inboxes = make_network(latency=ConstantLatency(5.0))
        network.broadcast(1, [2, 3], lambda dst: f"for-{dst}")
        world.run_for(10.0)
        assert inboxes[2] == [(1, "for-2")]
        assert inboxes[3] == [(1, "for-3")]

    def test_broadcast_omission_fault_drops_a_subset(self):
        world, network, inboxes = make_network(
            members=tuple(range(1, 11)),
            latency=ConstantLatency(5.0),
            fault=BroadcastOmissionFault(0.4),
        )
        targets = list(range(2, 11))
        network.broadcast(1, targets, lambda dst: "hb")
        world.run_for(10.0)
        reached = sum(1 for member in targets if inboxes[member])
        assert reached == len(targets) - 4  # ceil(0.4 * 9) == 4 omitted
        assert network.stats.dropped_by_fault == 4

    def test_disconnected_sender_broadcast_keeps_accounting_balanced(self):
        # Regression: a disconnected sender's broadcast used to bump
        # dropped_disconnected without recording the messages as sent,
        # breaking sent == delivered + dropped once everything drained.
        world, network, inboxes = make_network(latency=ConstantLatency(5.0))
        network.disconnect(1)
        assert network.broadcast(1, [2, 3], lambda dst: f"for-{dst}") == []
        world.run_for(10.0)
        assert inboxes[2] == [] and inboxes[3] == []
        assert network.stats.sent == 2
        assert network.stats.dropped_disconnected == 2
        assert network.stats.sent == network.stats.delivered + network.stats.dropped
        assert network.stats.per_type_sent == {"str": 2}

    def test_unicast_loss_fault_counts_drops(self):
        world, network, inboxes = make_network(
            latency=ConstantLatency(5.0), fault=PacketLossFault(1.0)
        )
        assert network.send(1, 2, "x") is None
        assert network.stats.dropped_by_fault == 1

    def test_set_fault_replaces_injector(self):
        world, network, inboxes = make_network(latency=ConstantLatency(5.0))
        network.set_fault(PacketLossFault(1.0))
        assert network.send(1, 2, "x") is None


class TestPartitions:
    def test_partition_blocks_cross_cell_messages(self):
        world, network, inboxes = make_network(
            members=(1, 2, 3, 4, 5), latency=ConstantLatency(5.0)
        )
        network.partitions.partition([1, 2], [3, 4, 5])
        network.send(1, 2, "same-cell")
        network.send(1, 3, "cross-cell")
        world.run_for(10.0)
        assert inboxes[2] == [(1, "same-cell")]
        assert inboxes[3] == []
        assert network.stats.dropped_by_partition == 1

    def test_heal_restores_connectivity(self):
        world, network, inboxes = make_network(latency=ConstantLatency(5.0))
        network.partitions.partition([1], [2, 3])
        network.partitions.heal()
        network.send(1, 2, "healed")
        world.run_for(10.0)
        assert inboxes[2] == [(1, "healed")]

    def test_partition_applies_to_messages_in_flight(self):
        world, network, inboxes = make_network(latency=ConstantLatency(100.0))
        network.send(1, 2, "will-be-cut")
        network.partitions.partition([1], [2, 3])
        world.run_for(200.0)
        assert inboxes[2] == []


class TestPartitionManager:
    def test_unnamed_members_form_their_own_cell(self):
        manager = PartitionManager([1, 2, 3, 4])
        manager.partition([1, 2])
        assert manager.can_communicate(1, 2)
        assert manager.can_communicate(3, 4)
        assert not manager.can_communicate(1, 3)
        assert manager.cell_members(3) == frozenset({3, 4})

    def test_duplicate_membership_rejected(self):
        manager = PartitionManager([1, 2, 3])
        with pytest.raises(NetworkError):
            manager.partition([1, 2], [2, 3])

    def test_unknown_member_rejected(self):
        manager = PartitionManager([1, 2])
        with pytest.raises(NetworkError):
            manager.partition([1, 9])
        with pytest.raises(NetworkError):
            manager.can_communicate(1, 9)

    def test_no_partition_means_full_connectivity(self):
        manager = PartitionManager([1, 2, 3])
        assert not manager.is_partitioned
        assert manager.can_communicate(1, 3)
        assert manager.cell_members(2) == frozenset({1, 2, 3})

"""Fixture tests for the AST determinism rules (D1-D4) and pragmas.

Each rule is proven against a seeded violation written to a temp file: temp
paths have no ``repro`` package component, so they are never allowlisted and
every rule is in scope -- the strictest reading the linter applies to unknown
code.  The D2 case includes the exact shape of the PR 2 ``run_many`` seed
drift (a locally-constructed ``random.Random(seed)`` feeding ``getrandbits``
draws), which is the regression this subsystem exists to prevent.
"""

import textwrap

import pytest

from repro.lint import lint_file
from repro.lint.model import package_relative_path, parse_pragmas


def _lint_source(tmp_path, source, rule_ids=None, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_file(path, rule_ids=rule_ids)


def _ids(findings):
    return [finding.rule_id for finding in findings]


class TestD1WallClock:
    def test_time_time_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            import time

            def stamp():
                return time.time()
            """,
        )
        assert _ids(findings) == ["D1"]
        assert findings[0].line == 4
        assert "time.time" in findings[0].message

    @pytest.mark.parametrize(
        "call",
        [
            "time.perf_counter()",
            "datetime.datetime.now()",
            "datetime.date.today()",
            "os.urandom(8)",
            "uuid.uuid4()",
            "secrets.token_hex()",
        ],
    )
    def test_each_entropy_source_is_flagged(self, tmp_path, call):
        findings = _lint_source(tmp_path, f"value = {call}\n")
        assert _ids(findings) == ["D1"]

    def test_module_level_random_draw_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            import random

            jitter = random.uniform(0.0, 1.0)
            """,
        )
        assert _ids(findings) == ["D1"]
        assert "global unseeded RNG" in findings[0].message

    def test_from_import_smuggling_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path, "from time import perf_counter\n"
        )
        assert _ids(findings) == ["D1"]
        assert "smuggles" in findings[0].message

    def test_clean_code_passes(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            from repro.common.rng import derive_seed

            def seeds(root):
                return derive_seed(root, "fixture")
            """,
        )
        assert findings == []

    @pytest.mark.parametrize("module", ["profiling.py", "progress.py"])
    def test_obs_wall_clock_modules_are_file_allowlisted(self, tmp_path, module):
        # Progress/profiling report wall-clock rates by definition; the
        # allowlist names the two files explicitly.
        path = tmp_path / "repro" / "obs" / module
        path.parent.mkdir(parents=True)
        path.write_text("import time\n\nstamp = time.monotonic()\n")
        assert lint_file(path) == []

    def test_obs_telemetry_stays_under_the_wall_clock_rule(self, tmp_path):
        # The allowlist covers two files, not the repro/obs/ package:
        # telemetry measures simulated facts only.
        path = tmp_path / "repro" / "obs" / "telemetry.py"
        path.parent.mkdir(parents=True)
        path.write_text("import time\n\nstamp = time.monotonic()\n")
        assert _ids(lint_file(path)) == ["D1"]


class TestD2RngConstruction:
    def test_unseeded_random_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            import random

            rng = random.Random()
            """,
        )
        assert _ids(findings) == ["D2"]
        assert "unseeded" in findings[0].message

    def test_pr2_run_many_seed_drift_shape_is_flagged(self, tmp_path):
        # The PR 2 regression: run_many derived per-run seeds from a locally
        # constructed Random(seed) instead of the paired derive_run_seed
        # design, so adding a protocol to a sweep shifted every later draw.
        findings = _lint_source(
            tmp_path,
            """\
            import random

            def run_many(seed, runs):
                rng = random.Random(seed)
                return [rng.getrandbits(32) for _ in range(runs)]
            """,
        )
        assert _ids(findings) == ["D2"]
        assert "derivation helpers" in findings[0].message

    @pytest.mark.parametrize(
        "construction",
        [
            "random.Random(derive_seed(0, 'fixture'))",
            "random.Random(derive_run_seed(0, 'raft', 3))",
        ],
    )
    def test_derived_seeds_pass(self, tmp_path, construction):
        findings = _lint_source(
            tmp_path,
            f"""\
            import random

            from repro.common.rng import derive_run_seed, derive_seed

            rng = {construction}
            """,
        )
        assert findings == []


class TestD3SetIteration:
    def test_for_loop_over_set_attribute_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            class Cluster:
                def __init__(self, members):
                    self._members = frozenset(members)

                def poll(self):
                    for member in self._members:
                        yield member
            """,
        )
        assert _ids(findings) == ["D3"]
        assert findings[0].line == 6

    def test_comprehension_over_set_is_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            ids = set(range(5))
            ordered = [i * 2 for i in ids]
            """,
        )
        assert _ids(findings) == ["D3"]

    def test_list_of_set_literal_is_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, "order = list({3, 1, 2})\n")
        assert _ids(findings) == ["D3"]

    def test_sorted_iteration_and_membership_pass(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            members = frozenset({3, 1, 2})
            ordered = [m for m in sorted(members)]
            hit = 2 in members
            widened = members | {9}
            still_unordered = {m + 1 for m in members}
            """,
        )
        assert findings == []

    def test_out_of_scope_repro_module_passes(self, tmp_path):
        # metrics/ is not on the simulation path, so D3 does not apply there.
        pkg = tmp_path / "repro" / "metrics"
        pkg.mkdir(parents=True)
        path = pkg / "tables.py"
        path.write_text("rows = list({3, 1, 2})\n", encoding="utf-8")
        assert lint_file(path) == []


class TestD4SimSleep:
    @pytest.mark.parametrize(
        "call", ["time.sleep(1)", "asyncio.sleep(0.1)", "asyncio.wait_for(x, 1)"]
    )
    def test_wall_clock_waits_are_flagged(self, tmp_path, call):
        findings = _lint_source(
            tmp_path,
            f"""\
            import asyncio
            import time

            async def pause(x):
                {call}
            """,
        )
        assert _ids(findings) == ["D4"]

    def test_runtime_modules_are_allowlisted(self, tmp_path):
        pkg = tmp_path / "repro" / "runtime"
        pkg.mkdir(parents=True)
        path = pkg / "loop.py"
        path.write_text(
            "import asyncio\n\nasync def pause():\n    await asyncio.sleep(0.1)\n",
            encoding="utf-8",
        )
        assert lint_file(path) == []


class TestPragmas:
    def test_pragma_silences_exactly_one_rule_on_one_line(self, tmp_path):
        # The flagged line violates D1 (time.time) *and* D2 (ad-hoc seed);
        # allow[D1] must leave the D2 finding standing, and the identical
        # unpragma'd line below keeps both.
        findings = _lint_source(
            tmp_path,
            """\
            import random
            import time

            a = random.Random(time.time())  # repro: allow[D1] fixture
            b = random.Random(time.time())
            """,
        )
        assert _ids(findings) == ["D2", "D1", "D2"]
        assert [f.line for f in findings] == [4, 5, 5]

    def test_pragma_only_applies_to_its_own_line(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            import time
            # repro: allow[D1]
            stamp = time.time()
            """,
        )
        assert _ids(findings) == ["D1"]

    def test_unknown_pragma_id_is_itself_a_finding(self, tmp_path):
        findings = _lint_source(
            tmp_path,
            """\
            import time

            stamp = time.time()  # repro: allow[D7]
            """,
        )
        assert _ids(findings) == ["D1", "P1"]
        assert "unknown rule id 'D7'" in findings[1].message

    def test_comma_separated_ids_parse(self):
        pragmas = parse_pragmas("x = 1  # repro: allow[D1, S1] reason\n")
        assert pragmas == {1: frozenset({"D1", "S1"})}

    def test_syntax_error_reports_e1(self, tmp_path):
        findings = _lint_source(tmp_path, "def broken(:\n")
        assert _ids(findings) == ["E1"]


class TestPackageRelativePath:
    def test_finds_last_repro_component(self):
        assert (
            package_relative_path("/root/repo/src/repro/net/faults.py")
            == "repro/net/faults.py"
        )

    def test_outside_package_is_none(self):
        assert package_relative_path("/tmp/pytest-1/fixture.py") is None

"""Unit tests for the ASCII charts and the result export helpers."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.export import (
    CSV_FIELDS,
    measurement_to_row,
    read_measurements_csv,
    read_summary_json,
    write_measurements_csv,
    write_summary_json,
)
from repro.metrics.records import ElectionMeasurement, MeasurementSet
from repro.viz import render_cdf_chart, render_grouped_bars, render_histogram, sparkline


class TestSparkline:
    def test_monotone_values_render_monotone_blocks(self):
        rendered = sparkline([1, 2, 3])
        assert rendered == "▁▅█"
        assert len(rendered) == 3

    def test_constant_series_renders_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_series_is_empty_string(self):
        assert sparkline([]) == ""


class TestCdfChart:
    def test_chart_contains_legend_axis_and_markers(self):
        chart = render_cdf_chart(
            {"raft": [2000.0, 2400.0, 3100.0], "escape": [1700.0, 1800.0, 1900.0]},
            width=40,
            height=8,
            title="election time CDF",
        )
        assert "election time CDF" in chart
        assert "* raft" in chart and "o escape" in chart
        assert "100%" in chart and "0%" in chart
        assert "*" in chart and "o" in chart

    def test_rejects_empty_input(self):
        with pytest.raises(ConfigurationError):
            render_cdf_chart({})
        with pytest.raises(ConfigurationError):
            render_cdf_chart({"x": []})
        with pytest.raises(ConfigurationError):
            render_cdf_chart({"x": [1.0]}, width=5, height=2)


class TestGroupedBars:
    def test_every_group_and_series_appears(self):
        chart = render_grouped_bars(
            groups=["s=8", "s=16"],
            series={"raft": [2000.0, 2600.0], "escape": [1800.0, 1900.0]},
            title="averages",
        )
        assert "s=8:" in chart and "s=16:" in chart
        assert chart.count("raft") == 2 and chart.count("escape") == 2
        assert "█" in chart

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            render_grouped_bars(groups=["a"], series={"x": [1.0, 2.0]})
        with pytest.raises(ConfigurationError):
            render_grouped_bars(groups=["a"], series={})


class TestHistogram:
    def test_bin_counts_sum_to_sample_size(self):
        values = [float(v) for v in range(100)]
        chart = render_histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in chart.splitlines()]
        assert sum(counts) == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_histogram([])
        with pytest.raises(ConfigurationError):
            render_histogram([1.0], bins=0)


def sample_measurement(total=2000.0, protocol="escape", converged=True):
    return ElectionMeasurement(
        protocol=protocol,
        cluster_size=8,
        seed=1,
        converged=converged,
        crash_time_ms=100.0,
        detection_ms=total * 0.8,
        election_ms=total * 0.2,
        total_ms=total,
        campaign_count=1,
        split_vote=False,
        winner_id=3 if converged else None,
        winner_term=7 if converged else None,
    )


class TestCsvExport:
    def test_round_trip_preserves_rows(self, tmp_path):
        sets = {
            "escape@8": MeasurementSet([sample_measurement(1900.0), sample_measurement(2000.0)]),
            "raft@8": MeasurementSet([sample_measurement(2400.0, protocol="raft")]),
        }
        path = write_measurements_csv(tmp_path / "out" / "runs.csv", sets)
        rows = read_measurements_csv(path)
        assert len(rows) == 3
        assert set(rows[0].keys()) == set(CSV_FIELDS)
        assert {row["label"] for row in rows} == {"escape@8", "raft@8"}

    def test_measurement_to_row_flattens_fields(self):
        row = measurement_to_row(sample_measurement(), label="x")
        assert row["label"] == "x"
        assert row["total_ms"] == 2000.0
        assert row["winner_id"] == 3

    def test_reading_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_measurements_csv(tmp_path / "nope.csv")


class TestJsonSummaryExport:
    def test_summary_contains_aggregates_and_metadata(self, tmp_path):
        sets = {
            "escape@8": MeasurementSet(
                [sample_measurement(1900.0), sample_measurement(2100.0)]
            )
        }
        path = write_summary_json(
            tmp_path / "summary.json", sets, metadata={"figure": "fig9", "runs": 2}
        )
        payload = read_summary_json(path)
        assert payload["metadata"]["figure"] == "fig9"
        cell = payload["cells"]["escape@8"]
        assert cell["runs"] == 2
        assert cell["mean_total_ms"] == pytest.approx(2000.0)
        assert cell["convergence"] == 1.0
        # The file itself is valid JSON on disk.
        assert json.loads(path.read_text())["cells"]

    def test_reading_missing_summary_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_summary_json(tmp_path / "missing.json")

"""Unit tests for the experiment modules' structure and reporting.

These tests run the sweeps with tiny run counts and cluster sizes: they verify
the plumbing (labels, series shapes, report rendering, CLI wiring), while the
integration suite checks the paper-level claims on realistic settings.
"""

import pytest

from repro.experiments import (
    ablation_k_sweep,
    ablation_ppf,
    exp_availability,
    exp_wan,
    fig03_randomization,
    fig04_randomization_average,
    fig09_scale,
    fig10_competing_candidates,
    fig11_message_loss,
)
from repro.experiments import registry
from repro.experiments.__main__ import build_parser
from repro.experiments.base import flatten_sets, paired_seeds, run_scenario_set
from repro.cluster.scenarios import ElectionScenario


class TestBaseHelpers:
    def test_run_scenario_set_collects_per_label_sets(self):
        scenarios = {
            "a": ElectionScenario(protocol="escape", cluster_size=3),
            "b": ElectionScenario(protocol="raft", cluster_size=3),
        }
        results = run_scenario_set(scenarios, runs=2, seed=1)
        assert set(results) == {"a", "b"}
        assert all(len(measurement_set) == 2 for measurement_set in results.values())

    def test_seeds_are_stable_per_label(self):
        assert paired_seeds(3, seed=5, label="x") == paired_seeds(3, seed=5, label="x")
        assert paired_seeds(3, seed=5, label="x") != paired_seeds(3, seed=5, label="y")

    def test_progress_callback_is_invoked(self):
        calls = []
        run_scenario_set(
            {"only": ElectionScenario(protocol="escape", cluster_size=3)},
            runs=2,
            seed=0,
            progress=lambda label, done, total: calls.append((label, done, total)),
        )
        assert calls == [("only", 1, 2), ("only", 2, 2)]

    def test_flatten_sets_merges_measurements(self):
        scenarios = {"a": ElectionScenario(protocol="escape", cluster_size=3)}
        results = run_scenario_set(scenarios, runs=2, seed=0)
        merged = flatten_sets(results.values())
        assert len(merged) == 2


class TestFig03:
    def test_sweep_covers_requested_ranges(self):
        ranges = ((500.0, 700.0), (500.0, 1_200.0))
        result = fig03_randomization.run(
            runs=2,
            seed=0,
            timeout_ranges=ranges,
            cluster_size=3,
        )
        assert result.timeout_ranges == ranges
        assert set(result.by_range) == {"500-700", "500-1200"}
        cdf = result.cdf_for(ranges[0])
        assert cdf and cdf[-1][1] == pytest.approx(1.0)

    def test_report_contains_one_row_per_range(self):
        result = fig03_randomization.run(
            runs=2, seed=0, timeout_ranges=((500.0, 900.0),), cluster_size=3
        )
        report = fig03_randomization.report(result)
        assert "500-900" in report
        assert "split votes" in report


class TestFig04:
    def test_averages_derived_from_fig03(self):
        fig3 = fig03_randomization.run(
            runs=2, seed=0, timeout_ranges=((500.0, 800.0), (500.0, 1_500.0)), cluster_size=3
        )
        result = fig04_randomization_average.from_fig03(fig3)
        assert len(result.average_total_ms) == 2
        assert all(total > 0 for total in result.average_total_ms)
        for detection, election, total in zip(
            result.average_detection_ms, result.average_election_ms, result.average_total_ms
        ):
            assert total == pytest.approx(detection + election)
        assert len(result.as_series()) == 2
        assert "Figure 4" in fig04_randomization_average.report(result)


class TestFig09:
    def test_result_exposes_cdf_average_and_reduction(self):
        result = fig09_scale.run(runs=2, seed=0, sizes=(3, 4))
        assert result.sizes == (3, 4)
        assert result.average_for("raft", 3) > 0
        assert result.average_for("escape", 4) > 0
        assert isinstance(result.reduction_for(3), float)
        assert result.cdf_for("escape", 3)
        report = fig09_scale.report(result)
        assert "Figure 9" in report and "reduction" in report


class TestFig10:
    def test_cells_cover_sizes_and_phases(self):
        result = fig10_competing_candidates.run(runs=1, seed=0, sizes=(4,), phases=(0, 1))
        assert set(result.by_label) == {
            "raft@4/0cc",
            "escape@4/0cc",
            "raft@4/1cc",
            "escape@4/1cc",
        }
        detection, election = result.detection_election_for("escape", 4, 1)
        assert detection > 0 and election >= 0
        assert "Figure 10" in fig10_competing_candidates.report(result)


class TestFig11:
    def test_cells_cover_protocols_sizes_and_losses(self):
        result = fig11_message_loss.run(
            runs=1, seed=0, sizes=(4,), loss_rates=(0.0, 0.2)
        )
        assert len(result.by_label) == 6  # 3 protocols x 1 size x 2 loss rates
        assert result.average_for("zraft", 4, 0.2) > 0
        assert isinstance(result.reduction_vs_raft("escape", 4, 0.0), float)
        assert "Figure 11" in fig11_message_loss.report(result)


class TestAblations:
    def test_ppf_ablation_structure(self):
        result = ablation_ppf.run(runs=1, seed=0, cluster_size=4, loss_rates=(0.0,))
        assert result.average_for("escape", 0.0) > 0
        assert isinstance(result.ppf_benefit_percent(0.0), float)
        assert "PPF" in ablation_ppf.report(result)

    def test_k_sweep_structure(self):
        result = ablation_k_sweep.run(runs=1, seed=0, cluster_size=4, k_values=(100.0, 500.0))
        assert result.average_for(100.0) > 0
        assert result.mean_campaigns_for(500.0) >= 1.0
        assert "k" in ablation_k_sweep.report(result)


class TestWan:
    def test_cells_cover_protocols_and_conditions(self):
        result = exp_wan.run(
            runs=1,
            seed=0,
            conditions=("paper-default", "geo-two-region"),
            cluster_size=4,
        )
        assert set(result.by_label) == {
            f"{protocol}+{condition}"
            for protocol in ("raft", "zraft", "escape")
            for condition in ("paper-default", "geo-two-region")
        }
        assert result.average_for("escape", "geo-two-region") > 0
        assert isinstance(
            result.reduction_vs_raft("zraft", "paper-default"), float
        )
        report = exp_wan.report(result)
        assert "WAN failover" in report and "geo-two-region" in report

    def test_narrowed_protocols_are_respected_end_to_end(self):
        result = exp_wan.run(
            runs=1,
            seed=0,
            conditions=("paper-default",),
            protocols=("raft", "escape"),
            cluster_size=3,
        )
        assert result.protocols == ("raft", "escape")
        assert set(result.by_label) == {
            "raft+paper-default",
            "escape+paper-default",
        }
        report = exp_wan.report(result)
        assert "Z-Raft" not in report
        assert "ESCAPE vs Raft" in report

    def test_unknown_condition_fails_fast(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no-such"):
            exp_wan.build_scenarios(conditions=("no-such",))

    def test_parallel_equals_sequential(self):
        """The wan sweep is bit-for-bit identical at any worker count."""
        kwargs = dict(
            runs=2,
            seed=7,
            conditions=("geo-two-region", "chaos-composite"),
            cluster_size=3,
        )
        sequential = exp_wan.run(workers=1, **kwargs)
        parallel = exp_wan.run(workers=2, **kwargs)
        assert set(sequential.by_label) == set(parallel.by_label)
        for label, measurement_set in sequential.by_label.items():
            assert (
                parallel.by_label[label].measurements
                == measurement_set.measurements
            )


class TestAvailability:
    def test_cells_cover_protocols_and_share_one_plan(self):
        result = exp_availability.run(
            runs=1,
            seed=0,
            plan="repeated-leader-kill",
            protocols=("raft", "escape"),
            cluster_size=3,
            horizon_ms=20_000.0,
        )
        assert set(result.by_protocol) == {"raft", "escape"}
        assert result.plan.name == "repeated-leader-kill"
        for protocol in ("raft", "escape"):
            availability_set = result.set_for(protocol)
            assert len(availability_set) == 1
            (measurement,) = availability_set.measurements
            assert measurement.plan == "repeated-leader-kill"
            assert 0.0 <= measurement.unavailability <= 1.0
        assert isinstance(result.downtime_saved_vs_raft("escape"), float)
        report = exp_availability.report(result)
        assert "Steady-state availability" in report
        assert "ESCAPE" in report

    def test_catalog_condition_layers_under_the_plan(self):
        result = exp_availability.run(
            runs=1,
            seed=0,
            plan="partition-flap",
            protocols=("raft",),
            cluster_size=4,
            horizon_ms=15_000.0,
            condition="geo-two-region",
        )
        assert result.condition == "geo-two-region"
        assert "condition=geo-two-region" in exp_availability.report(result)

    def test_liveness_free_protocols_are_rejected(self):
        from repro.common.errors import ConfigurationError
        from repro.chaos.plans import build_plan

        plan = build_plan("repeated-leader-kill", horizon_ms=10_000.0)
        with pytest.raises(ConfigurationError, match="livelock"):
            exp_availability.build_scenarios(plan, protocols=("raft-fixed",))

    def test_parallel_equals_sequential_for_every_liveness_protocol(self):
        """The acceptance bar: bit-identical sweeps at any worker count."""
        from repro import protocols as protocol_registry

        liveness = tuple(
            spec.name
            for spec in protocol_registry.specs()
            if spec.guarantees_liveness
        )
        kwargs = dict(
            runs=2,
            seed=7,
            plan="chaos-storm",
            protocols=liveness,
            cluster_size=5,
            horizon_ms=15_000.0,
        )
        sequential = exp_availability.run(workers=1, **kwargs)
        parallel = exp_availability.run(workers=4, **kwargs)
        assert set(sequential.by_protocol) == set(parallel.by_protocol)
        for protocol in liveness:
            assert (
                parallel.set_for(protocol).measurements
                == sequential.set_for(protocol).measurements
            )


class TestCli:
    def test_parser_knows_every_experiment(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--runs", "3", "--quick"])
        assert args.experiment == "fig9"
        assert args.runs == 3
        assert args.quick

    def test_registry_and_parser_agree(self):
        parser = build_parser()
        for name in registry.names():
            assert parser.parse_args([name]).experiment == name

    def test_scenario_option_accepts_catalog_names(self):
        from repro.cluster.catalog import condition_names

        parser = build_parser()
        args = parser.parse_args(["wan", "--scenario", "chaos-composite"])
        assert args.scenario == "chaos-composite"
        with pytest.raises(SystemExit):
            parser.parse_args(["wan", "--scenario", "not-a-condition"])
        assert "chaos-composite" in condition_names()

    def test_scenario_capable_experiments_exist(self):
        scenario_capable = registry.supporting("scenario")
        assert set(scenario_capable) <= set(registry.names())
        assert "wan" in scenario_capable
        assert "avail" in scenario_capable

    def test_plan_option_accepts_chaos_catalog_names(self):
        from repro.chaos.plans import plan_names

        parser = build_parser()
        args = parser.parse_args(["avail", "--plan", "partition-flap"])
        assert args.plan == "partition-flap"
        with pytest.raises(SystemExit):
            parser.parse_args(["avail", "--plan", "not-a-plan"])
        assert "partition-flap" in plan_names()

    def test_plan_capable_experiments_exist(self):
        assert registry.supporting("plan") == ("avail", "throughput")

    def test_protocols_option_accepts_registered_names(self):
        parser = build_parser()
        args = parser.parse_args(["wan", "--protocols", "raft-stagger,escape-noppf"])
        assert args.protocols == ("raft-stagger", "escape-noppf")
        with pytest.raises(SystemExit):
            parser.parse_args(["wan", "--protocols", "raft,paxos"])

    def test_protocols_option_rejects_liveness_free_protocols(self):
        # raft-fixed livelocks by design; a sweep over it can only abort.
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["wan", "--protocols", "raft-fixed,escape"])

    def test_protocol_capable_experiments_exist(self):
        assert {
            "fig9",
            "fig9-xl",
            "fig10",
            "fig11",
            "wan",
            "avail",
            "throughput",
            "ablation-ppf",
        } == set(registry.supporting("protocols"))

    def test_default_protocols_come_from_the_registry(self):
        from repro import protocols as protocol_registry

        assert fig09_scale.PROTOCOLS == protocol_registry.RAFT_VS_ESCAPE
        assert fig11_message_loss.PROTOCOLS == protocol_registry.PAPER_PROTOCOLS
        assert exp_wan.PROTOCOLS == protocol_registry.PAPER_PROTOCOLS
        assert exp_availability.PROTOCOLS == protocol_registry.PAPER_PROTOCOLS
        assert "escape-noppf" in ablation_ppf.PROTOCOLS

    def test_streaming_capable_experiments_exist(self):
        assert registry.supporting("streaming") == ("fig9-xl", "throughput")

    def test_streaming_option_is_tri_state(self):
        # None = spec default, True/False = explicit override; the tri-state
        # lets the CLI distinguish "unspecified" from --no-streaming.
        parser = build_parser()
        assert parser.parse_args(["fig9-xl"]).streaming is None
        assert parser.parse_args(["fig9-xl", "--streaming"]).streaming is True
        assert parser.parse_args(["fig9-xl", "--no-streaming"]).streaming is False

    def test_checkpoint_option_takes_a_directory(self):
        parser = build_parser()
        args = parser.parse_args(["fig9-xl", "--checkpoint", "ckpts"])
        assert args.checkpoint == "ckpts"
        assert parser.parse_args(["fig9-xl"]).checkpoint is None

    def test_checkpoint_with_no_streaming_is_rejected_by_the_cli(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig9-xl", "--checkpoint", "ckpts", "--no-streaming"])
        assert "checkpoint" in capsys.readouterr().err.lower()

    def test_streaming_rejected_for_unsupporting_experiments(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="streaming"):
            registry.run_experiment("fig3", runs=1, streaming=True)
        with pytest.raises(ConfigurationError, match="checkpoint"):
            registry.run_experiment("fig9-xl", runs=1, streaming=False, checkpoint="x")

    def test_trace_capable_experiments_exist(self):
        assert registry.supporting("trace") == ("fig3", "fig9", "throughput")

    def test_trace_out_option_takes_a_directory(self):
        # dest is "trace" so the registry's capability loop sees the option
        # under its capability name.
        parser = build_parser()
        assert parser.parse_args(["fig3", "--trace-out", "traces"]).trace == "traces"
        assert parser.parse_args(["fig3"]).trace is None

    def test_trace_rejected_for_unsupporting_experiments(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(
            ConfigurationError, match="--trace is not supported by: fig4"
        ):
            registry.run_experiment("fig4", runs=1, trace="traces")

    def test_progress_options_parse(self):
        parser = build_parser()
        args = parser.parse_args(["fig3", "--heartbeat", "hb.json", "--ticker"])
        assert args.heartbeat == "hb.json"
        assert args.ticker is True
        defaults = parser.parse_args(["fig3"])
        assert defaults.heartbeat is None and defaults.ticker is False

"""Unit tests for the Probing Patrol Function."""

import pytest

from repro.common.config import ScaParameters
from repro.common.errors import ConfigurationError
from repro.escape.ppf import ProbingPatrol
from repro.escape.sca import validate_assignment


def make_patrol(cluster_size=5, leader_id=1, initial_clock=1, **kwargs):
    followers = [sid for sid in range(1, cluster_size + 1) if sid != leader_id]
    return ProbingPatrol(
        leader_id=leader_id,
        followers=followers,
        cluster_size=cluster_size,
        sca=ScaParameters(base_time_ms=1500.0, k_ms=500.0),
        initial_clock=initial_clock,
        **kwargs,
    )


class TestConstruction:
    def test_every_follower_gets_a_unique_configuration(self):
        patrol = make_patrol(cluster_size=5)
        assignments = patrol.assignments
        assert set(assignments) == {2, 3, 4, 5}
        assert sorted(config.priority for config in assignments.values()) == [2, 3, 4, 5]
        validate_assignment(assignments)

    def test_top_priority_gets_base_timeout(self):
        patrol = make_patrol()
        best = patrol.configuration_for(patrol.groomed_future_leader())
        assert best.priority == 5
        assert best.timer_period_ms == 1500.0

    def test_initial_clock_is_respected(self):
        patrol = make_patrol(initial_clock=9)
        assert patrol.conf_clock == 9
        assert all(config.conf_clock == 9 for config in patrol.assignments.values())

    def test_follower_count_must_match_cluster_size(self):
        with pytest.raises(ConfigurationError):
            ProbingPatrol(
                leader_id=1, followers=[2, 3], cluster_size=5, sca=ScaParameters()
            )

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            make_patrol(lag_entries_threshold=0)
        with pytest.raises(ConfigurationError):
            make_patrol(stale_after_ms=0.0)


class TestResponsivenessTracking:
    def test_record_reply_updates_knowledge(self):
        patrol = make_patrol()
        patrol.record_reply(3, log_index=7, now_ms=100.0, reported_conf_clock=2)
        record = patrol.responsiveness_of(3)
        assert record.log_index == 7
        assert record.last_reply_ms == 100.0
        assert record.reported_conf_clock == 2

    def test_log_index_never_regresses(self):
        patrol = make_patrol()
        patrol.record_reply(3, log_index=7, now_ms=100.0)
        patrol.record_reply(3, log_index=5, now_ms=200.0)
        assert patrol.responsiveness_of(3).log_index == 7

    def test_unknown_follower_rejected(self):
        patrol = make_patrol(leader_id=1)
        with pytest.raises(ConfigurationError):
            patrol.record_reply(1, log_index=1, now_ms=0.0)

    def test_lagging_classification(self):
        patrol = make_patrol(stale_after_ms=500.0, lag_entries_threshold=2)
        # Never replied -> lagging.
        assert patrol.is_lagging(2, now_ms=0.0, leader_last_index=0)
        patrol.record_reply(2, log_index=10, now_ms=100.0)
        assert not patrol.is_lagging(2, now_ms=200.0, leader_last_index=10)
        # Silent for longer than the staleness window -> lagging.
        assert patrol.is_lagging(2, now_ms=700.0, leader_last_index=10)
        # Log gap at or beyond the threshold -> lagging.
        assert patrol.is_lagging(2, now_ms=200.0, leader_last_index=12)
        assert not patrol.is_lagging(2, now_ms=200.0, leader_last_index=11)


class TestRearrangement:
    def test_responsive_followers_keep_their_priorities(self):
        patrol = make_patrol()
        for follower in (2, 3, 4, 5):
            patrol.record_reply(follower, log_index=5, now_ms=10.0)
        before = {f: c.priority for f, c in patrol.assignments.items()}
        clock_before = patrol.conf_clock
        patrol.advance_round(now_ms=20.0, leader_last_index=5)
        after = {f: c.priority for f, c in patrol.assignments.items()}
        assert before == after
        assert patrol.conf_clock == clock_before  # no rearrangement, no clock bump

    def test_lagging_top_follower_is_demoted(self):
        # This is the Figure 5a scenario: the follower holding the best
        # configuration falls behind, so the configuration moves to an
        # up-to-date follower and the clock advances.
        patrol = make_patrol()
        groomed = patrol.groomed_future_leader()
        for follower in patrol.assignments:
            if follower != groomed:
                patrol.record_reply(follower, log_index=10, now_ms=10.0)
        patrol.record_reply(groomed, log_index=2, now_ms=10.0)  # far behind
        clock_before = patrol.conf_clock
        patrol.advance_round(now_ms=20.0, leader_last_index=10)
        assert patrol.groomed_future_leader() != groomed
        assert patrol.configuration_for(groomed).priority == 2  # sank to the bottom
        assert patrol.conf_clock == clock_before + 1
        assert patrol.rearrangement_count == 1

    def test_silent_follower_is_demoted_after_staleness_window(self):
        # Figure 5b: a crashed follower stops replying; its high-priority
        # configuration is handed to a live server.
        patrol = make_patrol(stale_after_ms=400.0)
        for follower in patrol.assignments:
            patrol.record_reply(follower, log_index=5, now_ms=0.0)
        groomed = patrol.groomed_future_leader()
        # Everyone except the groomed future leader keeps replying.
        for follower in patrol.assignments:
            if follower != groomed:
                patrol.record_reply(follower, log_index=6, now_ms=600.0)
        patrol.advance_round(now_ms=700.0, leader_last_index=6)
        assert patrol.groomed_future_leader() != groomed

    def test_recovered_follower_is_not_instantly_promoted(self):
        # Stability: re-promotions only happen when the ranking changes, so a
        # recovered server re-enters at its demoted position rather than
        # reclaiming the top slot and churning the clock.
        patrol = make_patrol()
        for follower in patrol.assignments:
            patrol.record_reply(follower, log_index=5, now_ms=0.0)
        groomed = patrol.groomed_future_leader()
        patrol.record_reply(groomed, log_index=5, now_ms=0.0)
        # Demote the groomed leader by silencing it for a while.
        for follower in patrol.assignments:
            if follower != groomed:
                patrol.record_reply(follower, log_index=8, now_ms=1_000.0)
        patrol.advance_round(now_ms=1_100.0, leader_last_index=8)
        demoted_priority = patrol.configuration_for(groomed).priority
        # It catches back up ...
        patrol.record_reply(groomed, log_index=8, now_ms=1_200.0)
        patrol.advance_round(now_ms=1_300.0, leader_last_index=8)
        # ... and keeps its (low) priority: no churn.
        assert patrol.configuration_for(groomed).priority == demoted_priority

    def test_clock_advances_monotonically(self):
        patrol = make_patrol()
        clocks = [patrol.conf_clock]
        for round_index in range(5):
            patrol.record_reply(2 + round_index % 4, log_index=round_index, now_ms=round_index * 10.0)
            patrol.advance_round(now_ms=round_index * 10.0, leader_last_index=round_index)
            clocks.append(patrol.conf_clock)
        assert clocks == sorted(clocks)

    def test_assignments_always_satisfy_lemma_three(self):
        patrol = make_patrol(cluster_size=8, leader_id=3)
        for round_index in range(10):
            for follower in list(patrol.assignments):
                if (follower + round_index) % 3 != 0:
                    patrol.record_reply(
                        follower, log_index=round_index, now_ms=round_index * 100.0
                    )
            patrol.advance_round(now_ms=round_index * 100.0, leader_last_index=round_index)
            validate_assignment(patrol.assignments)

    def test_two_server_cluster_has_single_follower_pool(self):
        patrol = make_patrol(cluster_size=2, leader_id=1)
        assert set(patrol.assignments) == {2}
        assert patrol.configuration_for(2).priority == 2

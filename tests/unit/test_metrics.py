"""Unit tests for measurement records, statistics and table rendering."""

import pytest

from repro.common.errors import ClusterError
from repro.metrics.records import ElectionMeasurement, MeasurementSet
from repro.metrics.stats import (
    cumulative_distribution,
    fraction_at_or_below,
    percentile,
    reduction_percent,
    summarize,
)
from repro.metrics.tables import render_comparison_table, render_table


def measurement(total=2000.0, converged=True, split=False, protocol="raft", **kwargs):
    detection = kwargs.pop("detection", total * 0.8)
    return ElectionMeasurement(
        protocol=protocol,
        cluster_size=kwargs.pop("cluster_size", 8),
        seed=kwargs.pop("seed", 0),
        converged=converged,
        crash_time_ms=1_000.0,
        detection_ms=detection,
        election_ms=total - detection,
        total_ms=total,
        campaign_count=kwargs.pop("campaigns", 1),
        split_vote=split,
        winner_id=2 if converged else None,
        winner_term=5 if converged else None,
        **kwargs,
    )


class TestElectionMeasurement:
    def test_converged_measurement_requires_winner(self):
        with pytest.raises(ClusterError):
            ElectionMeasurement(
                protocol="raft",
                cluster_size=3,
                seed=0,
                converged=True,
                crash_time_ms=0.0,
                detection_ms=1.0,
                election_ms=1.0,
                total_ms=2.0,
                campaign_count=1,
                split_vote=False,
                winner_id=None,
                winner_term=None,
            )

    def test_extra_mapping_is_mutable(self):
        m = measurement()
        m.extra["note"] = "x"
        assert m.extra["note"] == "x"


class TestMeasurementSet:
    def test_totals_only_include_converged_runs(self):
        measurements = MeasurementSet(
            [measurement(2000.0), measurement(3000.0, converged=False), measurement(4000.0)]
        )
        assert measurements.totals_ms() == [2000.0, 4000.0]
        assert measurements.mean_total_ms() == 3000.0
        assert len(measurements.converged) == 2

    def test_split_vote_and_convergence_fractions(self):
        measurements = MeasurementSet(
            [measurement(split=True), measurement(), measurement(converged=False)]
        )
        assert measurements.split_vote_fraction() == pytest.approx(1 / 3)
        assert measurements.convergence_fraction() == pytest.approx(2 / 3)

    def test_empty_set_behaviour(self):
        empty = MeasurementSet(label="empty")
        assert empty.split_vote_fraction() == 0.0
        assert empty.convergence_fraction() == 0.0
        with pytest.raises(ClusterError):
            empty.mean_total_ms()

    def test_values_selector(self):
        measurements = MeasurementSet([measurement(campaigns=2), measurement(campaigns=4)])
        assert measurements.values(lambda m: m.campaign_count) == [2, 4]

    def test_add_and_iterate(self):
        measurements = MeasurementSet()
        measurements.add(measurement())
        assert len(list(measurements)) == 1


class TestStats:
    def test_cdf_is_monotone_and_ends_at_one(self):
        cdf = cumulative_distribution([30.0, 10.0, 20.0])
        assert cdf == [(10.0, pytest.approx(1 / 3)), (20.0, pytest.approx(2 / 3)), (30.0, 1.0)]

    def test_cdf_of_empty_sequence(self):
        assert cumulative_distribution([]) == []

    def test_fraction_at_or_below(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert fraction_at_or_below(values, 2.5) == 0.5
        assert fraction_at_or_below([], 1.0) == 0.0

    def test_percentiles(self):
        values = list(range(1, 101))
        assert percentile(values, 50.0) == pytest.approx(50.5)
        assert percentile(values, 0.0) == 1
        assert percentile(values, 100.0) == 100
        assert percentile([42.0], 75.0) == 42.0

    def test_percentile_validation(self):
        with pytest.raises(ClusterError):
            percentile([], 50.0)
        with pytest.raises(ClusterError):
            percentile([1.0], 120.0)

    def test_summarize(self):
        summary = summarize([100.0, 200.0, 300.0, 400.0])
        assert summary.count == 4
        assert summary.mean == 250.0
        assert summary.minimum == 100.0
        assert summary.maximum == 400.0
        # Sample (n-1) standard deviation: sqrt(50000 / 3).
        assert summary.std_dev == pytest.approx(129.10, rel=1e-3)
        assert "mean=250.0ms" in summary.describe()

    def test_summarize_uses_sample_std_dev(self):
        import statistics

        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert summarize(values).std_dev == pytest.approx(statistics.stdev(values))

    def test_summarize_single_value_has_zero_std_dev(self):
        summary = summarize([42.0])
        assert summary.std_dev == 0.0
        assert summary.median == 42.0
        assert summary.p99 == 42.0

    def test_summarize_percentiles_match_unsorted_percentile_calls(self):
        values = [9.0, 1.0, 7.0, 3.0, 5.0, 8.0, 2.0]
        summary = summarize(values)
        assert summary.median == percentile(values, 50.0)
        assert summary.p95 == percentile(values, 95.0)
        assert summary.p99 == percentile(values, 99.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ClusterError):
            summarize([])

    def test_reduction_percent_matches_paper_style(self):
        # "ESCAPE shortens the leader election time by 21.3%" style numbers.
        assert reduction_percent(1000.0, 787.0) == pytest.approx(21.3)
        with pytest.raises(ClusterError):
            reduction_percent(0.0, 1.0)


class TestTables:
    def test_render_table_aligns_columns(self):
        text = render_table(
            headers=["name", "value"],
            rows=[["raft", 2000.123], ["escape", 1700]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(headers=["a", "b"], rows=[[1]])

    def test_render_comparison_table(self):
        text = render_comparison_table(
            row_labels=[8, 16],
            series={"raft": [2000.0, 2500.0], "escape": [1800.0, 1900.0]},
            row_header="servers",
        )
        assert "servers" in text
        assert "2500.0" in text
        assert "escape" in text

    def test_render_comparison_table_with_missing_values(self):
        text = render_comparison_table(row_labels=[1, 2], series={"x": [10.0]})
        assert "-" in text

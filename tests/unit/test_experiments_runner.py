"""Unit tests for the parallel sweep execution engine.

The engine's contract is strict: for a fixed seed, every worker count must
produce *identical* measurement sets (same values, same order), because the
figure-level results of the paper reproduction may never depend on how the
sweep was scheduled across processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import SweepError
from repro.common.rng import SeedSequence
from repro.experiments.base import derive_run_seed, paired_seeds, run_scenario_set
from repro.experiments.runner import (
    SweepItem,
    build_work_items,
    resolve_workers,
    run_sweep,
)

SCENARIOS = {
    "escape-small": ElectionScenario(protocol="escape", cluster_size=3),
    "raft-small": ElectionScenario(protocol="raft", cluster_size=3),
}


@dataclass(frozen=True)
class _ExplodingScenario:
    """Stand-in scenario whose run always raises (module-level: picklable)."""

    def run(self, seed: int):
        raise ValueError(f"boom for seed {seed}")


class TestSeedDerivation:
    def test_paired_seeds_delegate_to_derive_run_seed(self):
        assert paired_seeds(4, seed=7, label="x") == [
            derive_run_seed(7, "x", index) for index in range(4)
        ]

    def test_derived_seeds_are_pinned(self):
        """Golden values: a drift here silently unpairs every A/B comparison.

        The constants were produced by the original inline derivation
        ``SeedSequence(seed).stream("experiment", label, index)`` and are
        platform-stable (SHA-256 based, not ``hash()``).
        """
        assert paired_seeds(3, seed=0, label="a") == [
            1569524556,
            3306680920,
            3135187838,
        ]
        assert paired_seeds(2, seed=42, label="raft@8") == [1347041454, 509708467]
        # The scheme matches the named-stream tree exactly.
        assert derive_run_seed(0, "a", 0) == SeedSequence(0).stream(
            "experiment", "a", 0
        ).getrandbits(32)
        assert len({derive_run_seed(0, "a", i) for i in range(100)}) == 100

    def test_work_items_carry_the_paired_seeds(self):
        items = build_work_items(SCENARIOS, runs=3, seed=5)
        assert len(items) == 6
        by_label: dict[str, list[SweepItem]] = {}
        for item in items:
            by_label.setdefault(item.label, []).append(item)
        for label, label_items in by_label.items():
            assert [item.seed for item in label_items] == paired_seeds(3, 5, label)
            assert [item.index for item in label_items] == [0, 1, 2]

    def test_measurements_record_the_derived_seed(self):
        results = run_scenario_set(SCENARIOS, runs=2, seed=9)
        for label, measurement_set in results.items():
            assert [m.seed for m in measurement_set] == paired_seeds(2, 9, label)


class TestDeterminism:
    def test_parallel_equals_sequential(self):
        sequential = run_sweep(SCENARIOS, runs=3, seed=1, workers=1)
        parallel = run_sweep(SCENARIOS, runs=3, seed=1, workers=4)
        assert set(sequential) == set(parallel)
        for label in sequential:
            assert sequential[label].measurements == parallel[label].measurements

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_sweep_is_invariant(self, workers):
        baseline = run_sweep(SCENARIOS, runs=2, seed=3, workers=1)
        results = run_sweep(SCENARIOS, runs=2, seed=3, workers=workers)
        for label in baseline:
            assert results[label].measurements == baseline[label].measurements

    def test_label_order_matches_input_order(self):
        results = run_sweep(SCENARIOS, runs=1, seed=0, workers=2)
        assert list(results) == list(SCENARIOS)


class TestProgress:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_progress_delivered_once_per_completed_run(self, workers):
        calls: list[tuple[str, int, int]] = []
        run_sweep(
            SCENARIOS,
            runs=3,
            seed=0,
            progress=lambda label, done, total: calls.append((label, done, total)),
            workers=workers,
        )
        for label in SCENARIOS:
            label_calls = [call for call in calls if call[0] == label]
            # Monotonic per-label counts 1..runs, each delivered exactly once.
            assert label_calls == [(label, done, 3) for done in (1, 2, 3)]

    def test_sequential_progress_interleaving_is_preserved(self):
        calls: list[tuple[str, int, int]] = []
        run_scenario_set(
            {"only": ElectionScenario(protocol="escape", cluster_size=3)},
            runs=2,
            seed=0,
            progress=lambda label, done, total: calls.append((label, done, total)),
        )
        assert calls == [("only", 1, 2), ("only", 2, 2)]


class TestErrorPropagation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_scenario_failure_raises_sweep_error_with_context(self, workers):
        scenarios = {"bad": _ExplodingScenario()}
        with pytest.raises(SweepError, match=r"'bad' run \d.*ValueError.*boom"):
            run_sweep(scenarios, runs=2, seed=0, workers=workers)

    def test_failure_in_one_label_of_a_mixed_sweep(self):
        scenarios = {
            "good": ElectionScenario(protocol="escape", cluster_size=3),
            "bad": _ExplodingScenario(),
        }
        with pytest.raises(SweepError, match="bad"):
            run_sweep(scenarios, runs=1, seed=0, workers=2)


class TestWorkerResolution:
    def test_workers_none_means_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_worker_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(SweepError):
            resolve_workers(0)
        with pytest.raises(SweepError):
            resolve_workers(-2)

    def test_more_workers_than_items_is_fine(self):
        results = run_sweep(
            {"only": ElectionScenario(protocol="raft", cluster_size=3)},
            runs=2,
            seed=0,
            workers=16,
        )
        assert len(results["only"]) == 2


class TestEngineInheritance:
    """Sweep workers must inherit the parent's engine selection."""

    def test_swept_engine_specs_collect_pinned_and_default(self):
        from repro.experiments.runner import _swept_engine_specs
        from repro.sim import engines

        scenarios = {
            "pinned": ElectionScenario(
                protocol="raft", cluster_size=3, engine="flat"
            ),
            "deferred": ElectionScenario(protocol="raft", cluster_size=3),
        }
        names = {spec.name for spec in _swept_engine_specs(scenarios)}
        assert names == {"flat", engines.default_engine_name()}

    def test_register_worker_specs_installs_engine_default(self):
        from repro.experiments.runner import _register_worker_specs
        from repro.sim import engines

        try:
            _register_worker_specs(
                (), engine_specs=(engines.get("flat"),), default_engine="flat"
            )
            assert engines.default_engine_name() == "flat"
        finally:
            engines.set_default_engine(None)

    def test_pool_sweep_matches_sequential_under_flat_engine(self):
        scenario = ElectionScenario(protocol="escape", cluster_size=3, engine="flat")
        sequential = run_sweep({"s": scenario}, runs=4, seed=9, workers=1)
        pooled = run_sweep({"s": scenario}, runs=4, seed=9, workers=2)
        assert [m.election_ms for m in pooled["s"]] == [
            m.election_ms for m in sequential["s"]
        ]

    def test_engine_selection_never_changes_sweep_results(self):
        classic = run_sweep(
            {"s": ElectionScenario(protocol="raft", cluster_size=3)},
            runs=4,
            seed=2,
            workers=1,
        )
        flat = run_sweep(
            {"s": ElectionScenario(protocol="raft", cluster_size=3, engine="flat")},
            runs=4,
            seed=2,
            workers=1,
        )
        assert [m.election_ms for m in flat["s"]] == [
            m.election_ms for m in classic["s"]
        ]

"""Unit tests for the mergeable streaming aggregates.

The streaming sweep engine's correctness rests on three claims pinned here:
in the exact regime (count <= capacity) the accumulators report
bit-identically to the batch ``summarize``/``cumulative_distribution`` path;
beyond the capacity the compression stays deterministic and keeps
count/min/max exact; and every accumulator's ``to_state``/``from_state``
round-trips bit-exactly through JSON (the checkpoint format's contract).
The any-chunking/any-merge-order generalisation lives in
``tests/property/test_streaming_equivalence.py``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.common.errors import ClusterError
from repro.metrics import (
    DEFAULT_CDF_CAPACITY,
    ElectionAggregate,
    MergeableCDF,
    StreamingSummary,
    cumulative_distribution,
    summarize,
)
from repro.metrics.records import ElectionMeasurement


def _measurement(
    seed: int,
    *,
    converged: bool = True,
    total_ms: float = 1500.0,
    split_vote: bool = False,
    campaigns: int = 1,
) -> ElectionMeasurement:
    return ElectionMeasurement(
        protocol="raft",
        cluster_size=3,
        seed=seed,
        converged=converged,
        crash_time_ms=100.0,
        detection_ms=total_ms / 3,
        election_ms=2 * total_ms / 3,
        total_ms=total_ms,
        campaign_count=campaigns,
        split_vote=split_vote,
        winner_id=1 if converged else None,
        winner_term=2 if converged else None,
    )


SAMPLE = [1500.0, 1900.5, 1200.25, 3100.0, 1500.0, 2050.125, 1750.0, 990.0]


class TestMergeableCDF:
    def test_exact_regime_matches_batch_cdf(self):
        sketch = MergeableCDF(capacity=16)
        for value in SAMPLE:
            sketch.add(value)
        assert sketch.exact
        assert sketch.count == len(SAMPLE)
        assert sketch.values() == sorted(SAMPLE)
        assert sketch.cumulative_distribution() == cumulative_distribution(SAMPLE)

    def test_exact_merge_is_lossless(self):
        left, right = MergeableCDF(capacity=16), MergeableCDF(capacity=16)
        for value in SAMPLE[:3]:
            left.add(value)
        for value in SAMPLE[3:]:
            right.add(value)
        left.merge(right)
        assert left.values() == sorted(SAMPLE)

    def test_capacity_floor(self):
        with pytest.raises(ClusterError):
            MergeableCDF(capacity=3)

    def test_non_finite_values_rejected(self):
        sketch = MergeableCDF(capacity=8)
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ClusterError):
                sketch.add(bad)

    def test_capacity_mismatch_rejected_on_merge(self):
        with pytest.raises(ClusterError):
            MergeableCDF(capacity=8).merge(MergeableCDF(capacity=16))

    def test_empty_sketch_has_no_percentile(self):
        with pytest.raises(ClusterError):
            MergeableCDF(capacity=8).percentile(50.0)

    def test_compression_triggers_past_capacity(self):
        sketch = MergeableCDF(capacity=8)
        for index in range(9):
            sketch.add(float(index))
        assert not sketch.exact
        assert sketch.count == 9
        with pytest.raises(ClusterError):
            sketch.values()
        # Percentiles stay observed values inside the sample's range.
        assert 0.0 <= sketch.percentile(50.0) <= 8.0

    def test_compression_is_deterministic(self):
        def build():
            sketch = MergeableCDF(capacity=8)
            for index in range(50):
                sketch.add(float((index * 37) % 50))
            return sketch

        assert build().to_state() == build().to_state()
        assert build() == build()

    def test_state_round_trips_through_json(self):
        sketch = MergeableCDF(capacity=8)
        for index in range(20):  # forces compression, keeps an exact buffer
            sketch.add(index * 0.1)
        state = json.loads(json.dumps(sketch.to_state()))
        assert MergeableCDF.from_state(state) == sketch


class TestStreamingSummary:
    def test_exact_regime_summary_is_bit_identical_to_batch(self):
        summary = StreamingSummary(capacity=16).extend(SAMPLE)
        assert summary.summary() == summarize(SAMPLE)
        assert summary.cumulative_distribution() == cumulative_distribution(SAMPLE)

    def test_chunked_merge_equals_single_pass(self):
        whole = StreamingSummary(capacity=16).extend(SAMPLE)
        merged = StreamingSummary(capacity=16).extend(SAMPLE[:2])
        for chunk in (SAMPLE[2:5], SAMPLE[5:]):
            merged.merge(StreamingSummary(capacity=16).extend(chunk))
        assert merged == whole
        assert merged.summary() == whole.summary()

    def test_merge_with_empty_is_identity_both_ways(self):
        summary = StreamingSummary(capacity=16).extend(SAMPLE)
        before = summary.to_state()
        summary.merge(StreamingSummary(capacity=16))
        assert summary.to_state() == before
        empty = StreamingSummary(capacity=16)
        empty.merge(summary)
        assert empty == summary

    def test_empty_summary_refuses_queries(self):
        empty = StreamingSummary(capacity=16)
        with pytest.raises(ClusterError):
            empty.summary()
        with pytest.raises(ClusterError):
            _ = empty.mean
        with pytest.raises(ClusterError):
            _ = empty.minimum
        with pytest.raises(ClusterError):
            _ = empty.maximum

    def test_compressed_regime_keeps_count_min_max_exact(self):
        values = [float((index * 17) % 101) for index in range(200)]
        summary = StreamingSummary(capacity=8).extend(values)
        stats = summary.summary()
        assert stats.count == len(values)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)
        assert stats.mean == pytest.approx(sum(values) / len(values))

    def test_state_round_trips_through_json(self):
        summary = StreamingSummary(capacity=16).extend(SAMPLE)
        state = json.loads(json.dumps(summary.to_state()))
        assert StreamingSummary.from_state(state).to_state() == summary.to_state()

    def test_empty_state_round_trips(self):
        state = json.loads(json.dumps(StreamingSummary(capacity=16).to_state()))
        restored = StreamingSummary.from_state(state)
        assert restored.count == 0
        assert restored == StreamingSummary(capacity=16)

    def test_default_capacity_is_paper_scale(self):
        assert StreamingSummary().cdf.capacity == DEFAULT_CDF_CAPACITY
        assert DEFAULT_CDF_CAPACITY >= 2048  # every registered default stays exact


class TestElectionAggregate:
    def test_counters_and_fractions(self):
        aggregate = ElectionAggregate("cell")
        aggregate.add(_measurement(1, total_ms=1000.0, split_vote=True, campaigns=2))
        aggregate.add(_measurement(2, total_ms=2000.0))
        aggregate.add(_measurement(3, converged=False, campaigns=3))
        assert len(aggregate) == 3
        assert aggregate.converged == 2
        assert aggregate.split_vote_fraction() == pytest.approx(1 / 3)
        assert aggregate.convergence_fraction() == pytest.approx(2 / 3)
        assert aggregate.mean_campaigns() == pytest.approx(2.0)
        # Period summaries cover converged runs only (MeasurementSet semantics).
        assert aggregate.total_summary().count == 2
        assert aggregate.mean_total_ms() == pytest.approx(1500.0)

    def test_from_measurements_equals_incremental_adds(self):
        measurements = [_measurement(seed, total_ms=1000.0 + seed) for seed in range(6)]
        incremental = ElectionAggregate("cell")
        for measurement in measurements:
            incremental.add(measurement)
        assert ElectionAggregate.from_measurements(measurements, "cell") == incremental

    def test_merge_equals_aggregating_the_concatenation(self):
        measurements = [_measurement(seed, total_ms=900.0 + 13 * seed) for seed in range(8)]
        left = ElectionAggregate.from_measurements(measurements[:3], "cell")
        left.merge(ElectionAggregate.from_measurements(measurements[3:], "cell"))
        whole = ElectionAggregate.from_measurements(measurements, "cell")
        assert left == whole
        assert left.total_summary() == whole.total_summary()
        assert left.total_cdf() == whole.total_cdf()

    def test_label_mismatch_rejected(self):
        with pytest.raises(ClusterError):
            ElectionAggregate("a").merge(ElectionAggregate("b"))

    def test_empty_aggregate_refuses_means(self):
        empty = ElectionAggregate("cell")
        with pytest.raises(ClusterError):
            empty.mean_campaigns()
        with pytest.raises(ClusterError):
            empty.mean_total_ms()
        with pytest.raises(ClusterError):
            empty.total_summary()

    def test_state_round_trips_through_json(self):
        measurements = [_measurement(seed) for seed in range(4)]
        aggregate = ElectionAggregate.from_measurements(measurements, "cell")
        state = json.loads(json.dumps(aggregate.to_state()))
        assert ElectionAggregate.from_state(state).to_state() == aggregate.to_state()

"""Unit tests for the simulator-backed node environment."""

from repro.cluster.environment import SimNodeEnvironment
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.sim.world import SimulationWorld

import repro


def make_env(node_id=1, members=(1, 2, 3), seed=0):
    world = SimulationWorld(seed=seed)
    network = SimulatedNetwork(world, members, latency=ConstantLatency(10.0))
    inbox = {member: [] for member in members}
    for member in members:
        network.register(
            member, lambda src, payload, member=member: inbox[member].append((src, payload))
        )
    return world, network, inbox, SimNodeEnvironment(world, network, node_id)


class TestSimNodeEnvironment:
    def test_now_tracks_the_world_clock(self):
        world, _, _, env = make_env()
        assert env.now() == 0.0
        world.run_for(42.0)
        assert env.now() == 42.0

    def test_send_and_broadcast_go_through_the_network(self):
        world, network, inbox, env = make_env()
        env.send(2, "direct")
        env.broadcast([2, 3], lambda dst: f"hello-{dst}")
        world.run_for(50.0)
        assert (1, "direct") in inbox[2]
        assert (1, "hello-2") in inbox[2]
        assert (1, "hello-3") in inbox[3]

    def test_timers_fire_through_the_scheduler_and_can_be_cancelled(self):
        world, _, _, env = make_env()
        fired = []
        keep = env.set_timer(20.0, lambda: fired.append("keep"), label="keep")
        drop = env.set_timer(10.0, lambda: fired.append("drop"), label="drop")
        env.cancel_timer(drop)
        world.run_for(50.0)
        assert fired == ["keep"]
        assert keep.label.startswith("S1:")

    def test_trace_records_are_attributed_to_the_node(self):
        world, _, _, env = make_env(node_id=2)
        env.trace("unit.test", detail=1)
        record = world.tracer.records[0]
        assert record.node == 2
        assert record.category == "unit.test"

    def test_each_node_has_an_independent_deterministic_rng(self):
        _, _, _, env_a = make_env(node_id=1, seed=5)
        _, _, _, env_b = make_env(node_id=2, seed=5)
        _, _, _, env_a_again = make_env(node_id=1, seed=5)
        draws_a = [env_a.rng.random() for _ in range(3)]
        assert draws_a == [env_a_again.rng.random() for _ in range(3)]
        assert draws_a != [env_b.rng.random() for _ in range(3)]

    def test_node_id_property(self):
        _, _, _, env = make_env(node_id=3)
        assert env.node_id == 3


class TestPackageSurface:
    def test_top_level_exports_are_importable(self):
        assert repro.__version__ == "1.1.0"
        assert repro.RaftNode.protocol_name == "raft"
        assert repro.EscapeNode.protocol_name == "escape"
        assert repro.ZRaftNode.protocol_name == "zraft"
        assert repro.EscapeNoPpfNode.protocol_name == "escape-noppf"
        assert repro.protocols.get("escape").node_class is repro.EscapeNode
        assert repro.ClusterConfig.of_size(3).quorum_size == 2

"""Unit tests for the Redis-Cluster failover adapter (Section IV-C)."""

import pytest

from repro.adapters.redis_cluster import (
    EscapeFailoverModel,
    RedisClusterParameters,
    RedisFailoverModel,
    compare_failover_models,
)
from repro.common.errors import ConfigurationError
from repro.experiments import adapter_redis


class TestParameters:
    def test_quorum_is_majority_of_voting_masters(self):
        assert RedisClusterParameters(voting_masters=5).quorum == 3
        assert RedisClusterParameters(voting_masters=7).quorum == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RedisClusterParameters(replicas=0)
        with pytest.raises(ConfigurationError):
            RedisClusterParameters(rank_confusion=1.5)
        with pytest.raises(ConfigurationError):
            RedisClusterParameters(vote_loss_rate=-0.1)


class TestStockRedisFailover:
    def test_failover_converges_on_a_single_replica(self):
        model = RedisFailoverModel(RedisClusterParameters())
        measurement = model.run(seed=3)
        assert measurement.converged
        assert measurement.promoted_replica is not None
        assert measurement.failover_ms > 0

    def test_runs_are_deterministic_per_seed(self):
        model = RedisFailoverModel(RedisClusterParameters())
        assert model.run(seed=5) == model.run(seed=5)
        assert model.run(seed=5) != model.run(seed=6)

    def test_rank_confusion_produces_epoch_collisions(self):
        confused = RedisFailoverModel(RedisClusterParameters(rank_confusion=0.8))
        measurements = confused.run_many(runs=100, base_seed=1)
        assert any(m.epoch_collisions > 0 for m in measurements)

    def test_collisions_increase_with_confusion(self):
        def collision_rate(confusion):
            model = RedisFailoverModel(RedisClusterParameters(rank_confusion=confusion))
            measurements = model.run_many(runs=150, base_seed=2)
            return sum(1 for m in measurements if m.epoch_collisions > 0) / len(measurements)

        assert collision_rate(0.7) > collision_rate(0.0)


class TestEscapeFailover:
    def test_groomed_failover_never_collides(self):
        model = EscapeFailoverModel(RedisClusterParameters(rank_confusion=0.8))
        measurements = model.run_many(runs=100, base_seed=3)
        assert all(m.epoch_collisions == 0 for m in measurements)
        assert all(m.converged for m in measurements)

    def test_freshest_replica_is_promoted(self):
        model = EscapeFailoverModel(RedisClusterParameters())
        measurement = model.run(seed=9)
        # Replica 0 holds the highest groomed priority in the model's schedule.
        assert measurement.promoted_replica == 0
        assert measurement.attempts == 1

    def test_stale_assignments_are_gated_but_failover_still_converges(self):
        model = EscapeFailoverModel(
            RedisClusterParameters(), stale_assignment_rate=1.0
        )
        # Every replica is stale: nothing can be promoted (all gated).
        measurement = model.run(seed=1)
        assert not measurement.converged
        partially_stale = EscapeFailoverModel(
            RedisClusterParameters(), stale_assignment_rate=0.3
        )
        measurements = partially_stale.run_many(runs=50, base_seed=4)
        assert any(m.converged for m in measurements)


class TestComparison:
    def test_escape_variant_is_at_least_as_fast_and_collision_free(self):
        results = compare_failover_models(
            runs=150, seed=7, params=RedisClusterParameters(rank_confusion=0.5)
        )
        assert results["escape-redis"]["mean_ms"] <= results["redis"]["mean_ms"]
        assert results["escape-redis"]["collision_rate"] == 0.0
        assert results["redis"]["collision_rate"] > 0.0

    def test_compare_rejects_non_positive_runs(self):
        with pytest.raises(ConfigurationError):
            compare_failover_models(runs=0)


class TestAdapterExperiment:
    def test_run_and_report(self):
        result = adapter_redis.run(runs=40, seed=0, confusion_levels=(0.0, 0.5))
        assert result.confusion_levels == (0.0, 0.5)
        assert result.escape_reduction_for(0.5) >= 0.0
        text = adapter_redis.report(result)
        assert "Redis" in text and "reduction" in text

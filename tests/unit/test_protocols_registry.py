"""The protocol registry: API contract plus a conformance suite.

Every registered protocol must build a cluster through the single dispatch
point, elect a leader in the sim harness (when it claims liveness), satisfy
the election-safety invariant, and round-trip through the multiprocessing
sweep runner with bit-identical results.  ``raft-fixed`` deliberately claims
*no* liveness: identical deterministic timeouts collide forever, which is the
Figure 10 argument -- a dedicated test pins the predicted livelock.
"""

import pickle

import pytest

from repro import protocols
from repro.cluster.builder import build_cluster
from repro.cluster.catalog import scenario_for
from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import ClusterError, ConfigurationError
from repro.experiments.runner import run_sweep
from repro.raft.node import RaftNode
from repro.raft.timers import FixedTimeoutPolicy, ScriptOnlyPolicy

LIVE_PROTOCOLS = [
    spec.name for spec in protocols.specs() if spec.guarantees_liveness
]


class TestRegistryApi:
    def test_builtins_are_registered(self):
        assert {"raft", "zraft", "escape"} <= set(protocols.names())
        assert {"raft-fixed", "raft-stagger", "escape-noppf"} <= set(
            protocols.names()
        )

    def test_get_unknown_name_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            protocols.get("nope")
        message = str(excinfo.value)
        assert "nope" in message
        for name in protocols.names():
            assert name in message

    def test_duplicate_registration_rejected_unless_replace(self):
        spec = protocols.get("raft")
        with pytest.raises(ConfigurationError, match="already registered"):
            protocols.register(spec)
        assert protocols.register(spec, replace=True) is spec

    def test_register_unregister_round_trip(self):
        custom = protocols.ProtocolSpec(
            name="test-custom",
            node_class=RaftNode,
            title="Custom",
            description="a test-only variant",
        )
        protocols.register(custom)
        try:
            assert protocols.is_registered("test-custom")
            assert protocols.get("test-custom") is custom
        finally:
            assert protocols.unregister("test-custom") is custom
        assert not protocols.is_registered("test-custom")

    def test_validated_accepts_registered_and_rejects_unknown(self):
        assert protocols.validated("raft", "escape") == ("raft", "escape")
        with pytest.raises(ConfigurationError):
            protocols.validated("raft", "not-a-protocol")

    def test_titles_and_fallback(self):
        assert protocols.title("zraft") == "Z-Raft"
        assert protocols.title("unregistered-name") == "unregistered-name"
        assert protocols.titles()["escape"] == "ESCAPE"

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            protocols.ProtocolSpec(name="has space", node_class=RaftNode, title="x")
        with pytest.raises(ConfigurationError, match="timeout_kind"):
            protocols.ProtocolSpec(
                name="x", node_class=RaftNode, title="x", timeout_kind="magic"
            )
        with pytest.raises(ConfigurationError, match="RaftNode subclass"):
            protocols.ProtocolSpec(name="x", node_class=dict, title="x")

    def test_specs_pickle_by_reference(self):
        for spec in protocols.specs():
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestCustomSpecEndToEnd:
    def test_custom_spec_round_trips_through_the_sweep_pool(self):
        """Worker processes mirror the parent's registrations.

        On ``fork`` platforms workers inherit the registry anyway; the pool
        initializer makes the same sweep work under ``spawn``, where workers
        re-import :mod:`repro.protocols` and would otherwise only know the
        built-ins.
        """
        protocols.register(
            protocols.ProtocolSpec(
                name="test-pool-raft",
                node_class=RaftNode,
                title="Pool Raft",
            )
        )
        try:
            scenarios = {
                "custom": ElectionScenario(protocol="test-pool-raft", cluster_size=3)
            }
            sequential = run_sweep(scenarios, runs=2, seed=3, workers=1)
            parallel = run_sweep(scenarios, runs=2, seed=3, workers=2)
            assert (
                sequential["custom"].measurements == parallel["custom"].measurements
            )
        finally:
            protocols.unregister("test-pool-raft")

    def test_registered_custom_spec_builds_and_elects(self):
        protocols.register(
            protocols.ProtocolSpec(
                name="test-slow-raft",
                node_class=RaftNode,
                title="Slow Raft",
                description="plain Raft under another name",
            )
        )
        try:
            scenario = ElectionScenario(protocol="test-slow-raft", cluster_size=3)
            measurement = scenario.run(seed=2)
            assert measurement.converged
            assert measurement.protocol == "test-slow-raft"
        finally:
            protocols.unregister("test-slow-raft")

    def test_scenario_rejects_unregistered_protocol_at_construction(self):
        with pytest.raises(ConfigurationError, match="registered"):
            ElectionScenario(protocol="test-slow-raft", cluster_size=3)


class TestConformance:
    @pytest.mark.parametrize("name", [spec.name for spec in protocols.specs()])
    def test_builds_the_spec_node_class(self, name):
        spec = protocols.get(name)
        cluster = build_cluster(name, size=3)
        assert cluster.protocol == name
        assert all(type(node) is spec.node_class for node in cluster.nodes.values())

    @pytest.mark.parametrize("name", LIVE_PROTOCOLS)
    def test_elects_a_leader_and_preserves_safety(self, name):
        measurement = ElectionScenario(protocol=name, cluster_size=3).run(seed=4)
        # scenario.run already asserts at-most-one-leader-per-term.
        assert measurement.converged
        assert measurement.winner_id is not None

    @pytest.mark.parametrize("name", LIVE_PROTOCOLS)
    def test_sweep_round_trip_is_bit_identical_across_workers(self, name):
        scenarios = {name: ElectionScenario(protocol=name, cluster_size=3)}
        sequential = run_sweep(scenarios, runs=2, seed=11, workers=1)
        parallel = run_sweep(scenarios, runs=2, seed=11, workers=2)
        assert sequential[name].measurements == parallel[name].measurements

    @pytest.mark.parametrize("name", ["raft-stagger", "escape-noppf"])
    def test_variants_run_under_catalog_conditions(self, name):
        measurement = scenario_for("geo-two-region", name, 4).run(seed=3)
        assert measurement.converged

    def test_raft_fixed_livelocks_as_the_paper_predicts(self):
        """Identical deterministic timeouts collide forever (Fig. 10)."""
        spec = protocols.get("raft-fixed")
        assert not spec.guarantees_liveness
        scenario = ElectionScenario(protocol="raft-fixed", cluster_size=3)
        cluster, harness = scenario.build(seed=4)
        cluster.start_all()
        with pytest.raises(ClusterError, match="no leader"):
            harness.stabilize(max_time_ms=20_000.0)
        # Safety is never at risk -- the cluster just never converges.
        harness.assert_at_most_one_leader_per_term()
        terms = {node.current_term for node in cluster.nodes.values()}
        assert max(terms) > 1  # campaigns kept firing, none won

    def test_default_policies_reach_the_nodes(self):
        fixed = build_cluster("raft-fixed", size=4)
        assert all(
            isinstance(node.timeout_policy, FixedTimeoutPolicy)
            for node in fixed.nodes.values()
        )
        timeouts = {
            node.timeout_policy.timeout_ms for node in fixed.nodes.values()
        }
        assert timeouts == {2250.0}  # midpoint of the 1500-3000 ms range

        stagger = build_cluster("raft-stagger", size=4)
        ladder = {
            node_id: node.timeout_policy.timeout_ms
            for node_id, node in stagger.nodes.items()
        }
        # Eq. 1 with paper defaults (base 1500, k 500): highest id is fastest.
        assert ladder == {1: 3000.0, 2: 2500.0, 3: 2000.0, 4: 1500.0}

    def test_async_cluster_dispatches_through_the_registry(self):
        from repro.runtime.cluster import LocalAsyncCluster

        cluster = LocalAsyncCluster(protocol="escape-noppf", size=3)
        assert cluster.spec is protocols.get("escape-noppf")
        assert cluster.protocol == "escape-noppf"
        with pytest.raises(ConfigurationError, match="registered"):
            LocalAsyncCluster(protocol="paxos")

    def test_escape_noppf_never_starts_a_patrol(self):
        scenario = ElectionScenario(protocol="escape-noppf", cluster_size=3)
        cluster, harness = scenario.build(seed=6)
        cluster.start_all()
        harness.stabilize()
        leader = cluster.leader()
        assert leader is not None and leader.patrol is None
        assert all(
            node.configuration.conf_clock == 0 for node in cluster.nodes.values()
        )


class TestGoldenPairedResults:
    def test_paper_default_results_match_pre_registry_values(self):
        """The registry refactor must not move a single bit.

        Golden values captured from the string-dispatch implementation:
        the first ``run_many`` episode per protocol under the
        ``paper-default`` catalog condition at five servers.
        """
        golden = {
            "raft": (3594564750, 1934.9910609358967, 4),
            "zraft": (3594564750, 2321.8354988627807, 4),
            "escape": (3594564750, 1829.077887171983, 1),
        }
        for protocol, (seed, total_ms, winner) in golden.items():
            measurement = scenario_for("paper-default", protocol, 5).run_many(
                1, 0, label="golden"
            )[0]
            assert measurement.seed == seed
            assert measurement.total_ms == total_ms
            assert measurement.winner_id == winner


class TestDeprecatedOverrideAlias:
    def test_alias_warns_and_behaves_identically(self):
        override = ScriptOnlyPolicy(script=(1_234.0,))

        def factory(server_id):
            return override

        with pytest.warns(DeprecationWarning, match="timeout_override_factory"):
            aliased = build_cluster(
                "escape", size=3, escape_override_factory=factory
            )
        direct = build_cluster("escape", size=3, timeout_override_factory=factory)
        assert all(
            node._timeout_override is override for node in aliased.nodes.values()
        )
        assert all(
            node._timeout_override is override for node in direct.nodes.values()
        )

    def test_alias_also_reaches_zraft_nodes(self):
        """The rename's whole point: the override never was ESCAPE-only."""
        override = ScriptOnlyPolicy(script=(999.0,))
        with pytest.warns(DeprecationWarning):
            cluster = build_cluster(
                "zraft", size=3, escape_override_factory=lambda server_id: override
            )
        assert all(
            node._timeout_override is override for node in cluster.nodes.values()
        )

    def test_alias_conflicts_with_the_new_name(self):
        def factory(server_id):
            return ScriptOnlyPolicy(script=(500.0,))

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="not both"):
                build_cluster(
                    "escape",
                    size=3,
                    timeout_override_factory=factory,
                    escape_override_factory=factory,
                )

"""Unit tests for the persistent stores and snapshots."""

import pytest

from repro.common.errors import StorageError
from repro.storage.log import LogEntry, ReplicatedLog
from repro.storage.persistent import FileStore, InMemoryStore
from repro.storage.snapshot import Snapshot, SnapshotStore


class TestInMemoryStore:
    def test_initial_state_is_empty(self):
        store = InMemoryStore()
        assert store.load_term() == 0
        assert store.load_voted_for() is None
        assert store.load_log().last_index == 0

    def test_term_and_vote_round_trip(self):
        store = InMemoryStore()
        store.save_term_and_vote(3, 2)
        assert store.load_term() == 3
        assert store.load_voted_for() == 2

    def test_clearing_vote(self):
        store = InMemoryStore()
        store.save_term_and_vote(3, 2)
        store.save_term_and_vote(4, None)
        assert store.load_voted_for() is None

    def test_refuses_term_regression(self):
        store = InMemoryStore()
        store.save_term_and_vote(5, None)
        with pytest.raises(StorageError):
            store.save_term_and_vote(4, None)

    def test_log_round_trip(self):
        store = InMemoryStore()
        log = ReplicatedLog([LogEntry(term=1, index=1, command="a")])
        store.save_log(log)
        assert store.load_log().entry_at(1).command == "a"


class TestFileStore:
    def test_state_round_trip(self, tmp_path):
        store = FileStore(tmp_path, server_id=3)
        store.save_term_and_vote(7, 1)
        reopened = FileStore(tmp_path, server_id=3)
        assert reopened.load_term() == 7
        assert reopened.load_voted_for() == 1

    def test_log_round_trip(self, tmp_path):
        store = FileStore(tmp_path, server_id=1)
        log = ReplicatedLog(
            [
                LogEntry(term=1, index=1, command={"op": "put", "key": "x", "value": 1}),
                LogEntry(term=2, index=2, command={"op": "delete", "key": "x"}),
            ]
        )
        store.save_log(log)
        loaded = FileStore(tmp_path, server_id=1).load_log()
        assert loaded.last_index == 2
        assert loaded.entry_at(2).term == 2
        assert loaded.entry_at(1).command["key"] == "x"

    def test_missing_files_mean_fresh_state(self, tmp_path):
        store = FileStore(tmp_path, server_id=9)
        assert store.load_term() == 0
        assert store.load_voted_for() is None
        assert len(store.load_log()) == 0

    def test_servers_do_not_share_files(self, tmp_path):
        first = FileStore(tmp_path, server_id=1)
        second = FileStore(tmp_path, server_id=2)
        first.save_term_and_vote(3, 1)
        assert second.load_term() == 0

    def test_refuses_term_regression(self, tmp_path):
        store = FileStore(tmp_path, server_id=1)
        store.save_term_and_vote(5, None)
        with pytest.raises(StorageError):
            store.save_term_and_vote(2, None)

    def test_corrupt_state_file_raises_storage_error(self, tmp_path):
        store = FileStore(tmp_path, server_id=4)
        store.save_term_and_vote(1, None)
        (tmp_path / "server-4-state.json").write_text("{not json")
        with pytest.raises(StorageError):
            FileStore(tmp_path, server_id=4).load_term()

    def test_corrupt_log_file_raises_storage_error(self, tmp_path):
        store = FileStore(tmp_path, server_id=4)
        store.save_log(ReplicatedLog([LogEntry(term=1, index=1, command=None)]))
        (tmp_path / "server-4-log.json").write_text("][")
        with pytest.raises(StorageError):
            FileStore(tmp_path, server_id=4).load_log()


class TestSnapshots:
    def test_install_and_read_latest(self):
        store = SnapshotStore()
        assert store.latest is None
        store.install(Snapshot(last_included_index=3, last_included_term=2, state={"x": 1}))
        assert store.latest.last_included_index == 3

    def test_snapshot_cannot_move_backwards(self):
        store = SnapshotStore()
        store.install(Snapshot(5, 2, {}))
        with pytest.raises(StorageError):
            store.install(Snapshot(3, 2, {}))

    def test_compact_without_snapshot_returns_log_unchanged(self):
        store = SnapshotStore()
        log = ReplicatedLog([LogEntry(term=1, index=1, command="a")])
        assert store.compact(log) is log

    def test_compact_drops_covered_prefix(self):
        store = SnapshotStore()
        log = ReplicatedLog(
            [LogEntry(term=1, index=index, command=index) for index in range(1, 6)]
        )
        store.install(Snapshot(last_included_index=3, last_included_term=1, state=None))
        compacted = store.compact(log)
        assert len(compacted) == 2
        assert [entry.command for entry in compacted] == [4, 5]

    def test_invalid_snapshot_fields_rejected(self):
        with pytest.raises(StorageError):
            Snapshot(-1, 0, None)
        with pytest.raises(StorageError):
            Snapshot(0, -2, None)

"""Unit tests for the named scenario catalog.

The acceptance bar for the catalog is operational: every condition must build
a runnable scenario, pickle round-trip (the process pool ships scenarios to
workers), and produce bit-for-bit identical sweep results at any worker
count.
"""

import pickle

import pytest

from repro.cluster.catalog import (
    CATALOG,
    NetworkCondition,
    catalog_scenarios,
    condition_names,
    get_condition,
    scenario_for,
)
from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import ConfigurationError
from repro.experiments.runner import run_sweep
from repro.net.faults import CompositeFault, NoFault
from repro.net.latency import GeoGroupLatency, UniformLatency


class TestCatalogContents:
    def test_catalog_has_the_documented_breadth(self):
        assert len(CATALOG) >= 6
        assert {
            "paper-default",
            "geo-two-region",
            "heavy-tail",
            "lossy-unicast",
            "dup-heavy-udp",
            "chaos-composite",
        } <= set(CATALOG)

    def test_names_and_keys_agree(self):
        assert condition_names() == tuple(CATALOG)
        for name, condition in CATALOG.items():
            assert condition.name == name
            assert condition.description

    def test_get_condition_names_available_ones_on_miss(self):
        assert get_condition("paper-default") is CATALOG["paper-default"]
        with pytest.raises(ConfigurationError, match="paper-default"):
            get_condition("no-such-condition")

    def test_paper_default_matches_the_testbed(self):
        scenario = scenario_for("paper-default", "raft", 5)
        assert scenario.latency_model() == UniformLatency(100.0, 200.0)
        assert isinstance(scenario.fault_injector(), NoFault)


class TestScenarioConstruction:
    def test_scenario_for_applies_condition_and_overrides(self):
        scenario = scenario_for(
            "geo-two-region", "escape", 8, workload_interval_ms=50.0
        )
        assert scenario.protocol == "escape"
        assert scenario.cluster_size == 8
        assert scenario.workload_interval_ms == 50.0
        model = scenario.latency_model()
        assert isinstance(model, GeoGroupLatency)
        assert len(set(model.regions.values())) == 2

    def test_apply_clears_the_loss_rate_shorthand(self):
        base = ElectionScenario(protocol="raft", cluster_size=5, loss_rate=0.3)
        applied = CATALOG["chaos-composite"].apply(base)
        assert applied.loss_rate == 0.0
        assert isinstance(applied.fault_injector(), CompositeFault)

    def test_explicit_spec_overrides_beat_the_condition(self):
        from repro.net.specs import DuplicationSpec
        from repro.net.faults import MessageDuplicationFault

        scenario = scenario_for(
            "geo-two-region", "raft", 5, fault=DuplicationSpec(0.5)
        )
        assert isinstance(scenario.fault_injector(), MessageDuplicationFault)

    def test_shorthand_overrides_are_rejected_not_shadowed(self):
        # The condition's specs would shadow the latency_range/loss_rate
        # shorthands; a silently ignored override is worse than an error.
        with pytest.raises(ConfigurationError, match="loss_rate"):
            scenario_for("chaos-composite", "raft", 5, loss_rate=0.2)
        with pytest.raises(ConfigurationError, match="latency_range"):
            scenario_for("paper-default", "raft", 5, latency_range=(10.0, 20.0))

    def test_catalog_scenarios_covers_every_condition(self):
        scenarios = catalog_scenarios("raft", 4)
        assert set(scenarios) == set(CATALOG)
        for scenario in scenarios.values():
            assert scenario.cluster_size == 4

    @pytest.mark.parametrize("name", condition_names())
    def test_every_condition_builds_a_cluster(self, name):
        cluster, _harness = scenario_for(name, "escape", 3).build(seed=0)
        assert cluster.config.size == 3


class TestPicklability:
    @pytest.mark.parametrize("name", condition_names())
    def test_condition_round_trips(self, name):
        condition = CATALOG[name]
        clone = pickle.loads(pickle.dumps(condition))
        assert clone == condition
        assert isinstance(clone, NetworkCondition)

    @pytest.mark.parametrize("name", condition_names())
    def test_catalog_scenario_round_trips(self, name):
        scenario = scenario_for(name, "escape", 5)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        # The clone resolves to the same network models (what a pool worker
        # actually uses).
        assert clone.latency_model() == scenario.latency_model()
        assert clone.fault_injector() == scenario.fault_injector()


class TestParallelDeterminism:
    def test_every_catalog_scenario_is_pool_deterministic(self):
        """Acceptance: workers=2 must reproduce workers=1 bit-for-bit."""
        scenarios = catalog_scenarios("escape", 3)
        sequential = run_sweep(scenarios, runs=2, seed=5, workers=1)
        parallel = run_sweep(scenarios, runs=2, seed=5, workers=2)
        assert list(sequential) == list(parallel)
        for name in scenarios:
            assert sequential[name].measurements == parallel[name].measurements

"""Unit tests for latency models and fault injectors."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.net.faults import (
    BroadcastOmissionFault,
    CompositeFault,
    LinkFault,
    MessageDuplicationFault,
    NoFault,
    PacketLossFault,
)
from repro.net.latency import (
    ConstantLatency,
    GeoGroupLatency,
    LogNormalLatency,
    UniformLatency,
    paper_latency,
)


class TestLatencyModels:
    def test_constant_latency_always_returns_value(self):
        model = ConstantLatency(42.0)
        rng = random.Random(0)
        assert all(model.sample(rng, 1, 2) == 42.0 for _ in range(10))

    def test_uniform_latency_stays_in_range(self):
        model = UniformLatency(100.0, 200.0)
        rng = random.Random(1)
        samples = [model.sample(rng, 1, 2) for _ in range(500)]
        assert all(100.0 <= sample <= 200.0 for sample in samples)
        assert max(samples) - min(samples) > 50.0  # actually spreads out

    def test_paper_latency_matches_netem_setting(self):
        model = paper_latency()
        assert (model.low_ms, model.high_ms) == (100.0, 200.0)

    def test_uniform_latency_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(200.0, 100.0)

    def test_lognormal_latency_is_positive_and_capped(self):
        model = LogNormalLatency(median_ms=150.0, sigma=0.5, max_ms=1_000.0)
        rng = random.Random(2)
        samples = [model.sample(rng, 1, 2) for _ in range(500)]
        assert all(0.0 < sample <= 1_000.0 for sample in samples)

    def test_geo_latency_uses_intra_and_inter_ranges(self):
        model = GeoGroupLatency(
            regions={1: "a", 2: "a", 3: "b"},
            intra_ms=(1.0, 2.0),
            inter_ms=(100.0, 110.0),
        )
        rng = random.Random(3)
        assert model.sample(rng, 1, 2) <= 2.0
        assert model.sample(rng, 1, 3) >= 100.0

    def test_geo_latency_requires_region_assignment(self):
        with pytest.raises(ConfigurationError):
            GeoGroupLatency(regions={})
        model = GeoGroupLatency(regions={1: "a"})
        with pytest.raises(ConfigurationError):
            model.region_of(9)


class TestNoFault:
    def test_never_drops(self):
        fault = NoFault()
        rng = random.Random(0)
        assert not fault.drop_unicast(rng, 1, 2)
        assert fault.omitted_broadcast_targets(rng, 1, [2, 3, 4]) == frozenset()


class TestPacketLossFault:
    def test_zero_rate_never_drops(self):
        fault = PacketLossFault(0.0)
        rng = random.Random(0)
        assert not any(fault.drop_unicast(rng, 1, 2) for _ in range(100))

    def test_full_rate_always_drops(self):
        fault = PacketLossFault(1.0)
        rng = random.Random(0)
        assert all(fault.drop_unicast(rng, 1, 2) for _ in range(100))

    def test_rate_is_approximately_respected(self):
        fault = PacketLossFault(0.3)
        rng = random.Random(7)
        drops = sum(fault.drop_unicast(rng, 1, 2) for _ in range(5_000))
        assert 0.25 < drops / 5_000 < 0.35

    def test_rejects_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PacketLossFault(1.5)


class TestBroadcastOmissionFault:
    def test_omits_ceil_of_delta_fraction(self):
        # Paper example: 10 servers, delta=20% -> the sender omits 2 per broadcast.
        fault = BroadcastOmissionFault(0.2)
        rng = random.Random(0)
        targets = list(range(2, 11))  # 9 peers of a 10-server cluster
        omitted = fault.omitted_broadcast_targets(rng, 1, targets)
        assert len(omitted) == 2
        assert omitted <= set(targets)

    def test_forty_percent_omits_four_of_nine(self):
        fault = BroadcastOmissionFault(0.4)
        rng = random.Random(1)
        omitted = fault.omitted_broadcast_targets(rng, 1, list(range(2, 11)))
        assert len(omitted) == 4

    def test_zero_rate_omits_nothing(self):
        fault = BroadcastOmissionFault(0.0)
        rng = random.Random(0)
        assert fault.omitted_broadcast_targets(rng, 1, [2, 3]) == frozenset()

    def test_omission_subset_varies_across_broadcasts(self):
        fault = BroadcastOmissionFault(0.4)
        rng = random.Random(5)
        targets = list(range(2, 12))
        subsets = {fault.omitted_broadcast_targets(rng, 1, targets) for _ in range(50)}
        assert len(subsets) > 1

    def test_unicast_untouched_by_default(self):
        fault = BroadcastOmissionFault(0.9)
        rng = random.Random(0)
        assert not any(fault.drop_unicast(rng, 1, 2) for _ in range(50))

    def test_unicast_affected_when_enabled(self):
        fault = BroadcastOmissionFault(1.0, affect_unicast=True)
        rng = random.Random(0)
        assert fault.drop_unicast(rng, 1, 2)


class TestLinkFault:
    def test_drops_only_broken_links(self):
        fault = LinkFault(broken_links=frozenset({(1, 2)}))
        rng = random.Random(0)
        assert fault.drop_unicast(rng, 1, 2)
        assert fault.drop_unicast(rng, 2, 1)  # symmetric by default
        assert not fault.drop_unicast(rng, 1, 3)

    def test_asymmetric_mode(self):
        fault = LinkFault(broken_links=frozenset({(1, 2)}), symmetric=False)
        rng = random.Random(0)
        assert fault.drop_unicast(rng, 1, 2)
        assert not fault.drop_unicast(rng, 2, 1)

    def test_broadcast_omits_broken_targets(self):
        fault = LinkFault(broken_links=frozenset({(1, 3)}))
        rng = random.Random(0)
        assert fault.omitted_broadcast_targets(rng, 1, [2, 3, 4]) == frozenset({3})


class TestCompositeFault:
    def test_union_of_drop_decisions(self):
        fault = CompositeFault(
            injectors=(
                LinkFault(broken_links=frozenset({(1, 2)})),
                BroadcastOmissionFault(0.0),
            )
        )
        rng = random.Random(0)
        assert fault.drop_unicast(rng, 1, 2)
        assert not fault.drop_unicast(rng, 1, 3)
        assert fault.omitted_broadcast_targets(rng, 1, [2, 3]) == frozenset({2})

    def test_forwards_duplication_from_wrapped_injectors(self):
        # Regression: a MessageDuplicationFault inside a composite used to be
        # silently disabled because the composite did not forward
        # should_duplicate to the network's duck-typed lookup.
        fault = CompositeFault(
            injectors=(BroadcastOmissionFault(0.2), MessageDuplicationFault(1.0))
        )
        rng = random.Random(0)
        assert fault.should_duplicate(rng, 1, 2)

    def test_no_duplication_without_a_duplicating_injector(self):
        fault = CompositeFault(
            injectors=(BroadcastOmissionFault(0.2), PacketLossFault(0.5))
        )
        rng = random.Random(0)
        assert not any(fault.should_duplicate(rng, 1, 2) for _ in range(50))

    def test_duplication_rate_is_preserved_inside_the_composite(self):
        direct = MessageDuplicationFault(0.3)
        wrapped = CompositeFault(injectors=(MessageDuplicationFault(0.3),))
        hits = lambda fault, seed: sum(  # noqa: E731 - tiny local helper
            fault.should_duplicate(random.Random(seed), 1, 2) for _ in range(1)
        )
        # Same RNG stream, same decisions: wrapping must not perturb draws.
        for seed in range(200):
            assert hits(direct, seed) == hits(wrapped, seed)

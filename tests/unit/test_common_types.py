"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import format_server, parse_server


class TestFormatServer:
    def test_formats_positive_identifier(self):
        assert format_server(3) == "S3"

    def test_formats_large_identifier(self):
        assert format_server(128) == "S128"


class TestParseServer:
    def test_round_trips_with_format(self):
        for server_id in (1, 7, 42, 128):
            assert parse_server(format_server(server_id)) == server_id

    def test_accepts_lowercase_prefix(self):
        assert parse_server("s9") == 9

    def test_rejects_missing_prefix(self):
        with pytest.raises(ValueError):
            parse_server("42")

    def test_rejects_non_numeric_suffix(self):
        with pytest.raises(ValueError):
            parse_server("Sx")

    def test_rejects_zero_and_negative_ids(self):
        with pytest.raises(ValueError):
            parse_server("S0")
        with pytest.raises(ValueError):
            parse_server("S-3")

    def test_rejects_empty_string(self):
        with pytest.raises(ValueError):
            parse_server("")

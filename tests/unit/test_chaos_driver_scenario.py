"""Unit tests for the chaos driver, availability observer and scenario."""

import pickle

import pytest

from repro.chaos.availability import AvailabilityObserver, cluster_available
from repro.chaos.driver import ChaosDriver
from repro.chaos.plans import ChaosPlan, build_plan
from repro.chaos.scenario import ChaosScenario
from repro.chaos.specs import (
    CrashLeader,
    CrashServer,
    Heal,
    PartitionGroups,
    Recover,
    SwapFault,
)
from repro.cluster.builder import build_cluster
from repro.cluster.harness import ElectionHarness
from repro.cluster.observers import ElectionObserver
from repro.common.errors import ConfigurationError, SimulationError
from repro.net.faults import PacketLossFault
from repro.net.specs import PacketLossSpec


def _stabilized_cluster(protocol="raft", size=5, seed=0, extra_listeners=()):
    observer = ElectionObserver()
    cluster = build_cluster(
        protocol=protocol,
        size=size,
        seed=seed,
        listeners=(observer, *extra_listeners),
        trace=False,
    )
    harness = ElectionHarness(cluster, observer)
    cluster.start_all()
    harness.stabilize()
    return cluster, harness


def _drive(plan, seed=0, extra_listeners=(), **driver_kwargs):
    cluster, harness = _stabilized_cluster(seed=seed, extra_listeners=extra_listeners)
    driver = ChaosDriver(cluster, plan, **driver_kwargs)
    driver.start()
    harness.run_for(plan.horizon_ms)
    return cluster, driver


class TestChaosDriver:
    def test_crash_leader_resolves_at_fire_time_and_recovers_fifo(self):
        plan = ChaosPlan(
            name="scripted",
            horizon_ms=20_000.0,
            events=(CrashLeader(at_ms=1_000.0), Recover(at_ms=8_000.0)),
        )
        cluster, driver = _drive(plan)
        kinds = [record.kind for record in driver.applied]
        assert kinds == ["crash-leader", "recover"]
        assert driver.disruption_count == 1
        assert not cluster.crashed  # the recovery brought the victim back

    def test_crash_is_skipped_when_quorum_would_be_lost(self):
        plan = ChaosPlan(
            name="overkill",
            horizon_ms=20_000.0,
            events=(
                CrashServer(at_ms=1_000.0, server_index=0),
                CrashServer(at_ms=2_000.0, server_index=1),
                CrashServer(at_ms=3_000.0, server_index=2),
            ),
        )
        cluster, driver = _drive(plan)
        # 5 servers, quorum 3: the third crash would leave only 2 running.
        assert driver.disruption_count == 2
        assert [record.kind for record in driver.skipped] == ["crash-server"]
        assert "quorum" in driver.skipped[0].detail
        assert len(cluster.crashed) == 2

    def test_preserve_quorum_can_be_disabled(self):
        plan = ChaosPlan(
            name="overkill",
            horizon_ms=20_000.0,
            events=(
                CrashServer(at_ms=1_000.0, server_index=0),
                CrashServer(at_ms=2_000.0, server_index=1),
                CrashServer(at_ms=3_000.0, server_index=2),
            ),
        )
        cluster, driver = _drive(plan, preserve_quorum=False)
        assert driver.disruption_count == 3
        assert len(cluster.crashed) == 3

    def test_crashing_an_already_crashed_server_is_skipped(self):
        plan = ChaosPlan(
            name="double-tap",
            horizon_ms=20_000.0,
            events=(
                CrashServer(at_ms=1_000.0, server_index=0),
                CrashServer(at_ms=2_000.0, server_index=0),
            ),
        )
        _, driver = _drive(plan)
        assert driver.disruption_count == 1
        assert "already crashed" in driver.skipped[0].detail

    def test_server_index_resolves_modulo_the_membership(self):
        plan = ChaosPlan(
            name="wrap",
            horizon_ms=20_000.0,
            events=(CrashServer(at_ms=1_000.0, server_index=7),),
        )
        cluster, driver = _drive(plan)
        # 5 servers: index 7 wraps to the third member (S3).
        assert cluster.crashed == frozenset({3})

    def test_partition_isolates_the_leader_and_heal_restores_it(self):
        plan = ChaosPlan(
            name="flap-once",
            horizon_ms=30_000.0,
            events=(
                PartitionGroups(at_ms=1_000.0, isolate_leader=True),
                Heal(at_ms=12_000.0),
            ),
        )
        cluster, driver = _drive(plan)
        assert [record.kind for record in driver.applied] == ["partition", "heal"]
        assert "isolated leader" in driver.applied[0].detail
        assert not cluster.network.partitions.is_partitioned

    def test_heal_without_partition_is_skipped(self):
        plan = ChaosPlan(
            name="noop-heal", horizon_ms=5_000.0, events=(Heal(at_ms=1_000.0),)
        )
        _, driver = _drive(plan)
        assert [record.kind for record in driver.skipped] == ["heal"]

    def test_recover_with_nothing_crashed_is_skipped(self):
        plan = ChaosPlan(
            name="noop-recover",
            horizon_ms=5_000.0,
            events=(Recover(at_ms=1_000.0),),
        )
        _, driver = _drive(plan)
        assert [record.kind for record in driver.skipped] == ["recover"]

    def test_swap_fault_installs_the_resolved_injector(self):
        plan = ChaosPlan(
            name="degrade",
            horizon_ms=5_000.0,
            events=(SwapFault(at_ms=1_000.0, fault=PacketLossSpec(0.2)),),
        )
        cluster, driver = _drive(plan)
        assert isinstance(cluster.network.fault, PacketLossFault)
        assert driver.disruption_count == 0  # fault swaps are not disruptions

    def test_swap_fault_none_restores_the_baseline_injector(self):
        plan = ChaosPlan(
            name="degrade-then-restore",
            horizon_ms=5_000.0,
            events=(
                SwapFault(at_ms=1_000.0, fault=PacketLossSpec(0.2)),
                SwapFault(at_ms=2_000.0, fault=None),
            ),
        )
        cluster, driver = _drive(plan)
        # The cluster was built with its default injector; after the restore
        # event the degraded-phase injector must be gone again.
        assert not isinstance(cluster.network.fault, PacketLossFault)
        assert any(
            "baseline" in record.detail for record in driver.applied
        )

    def test_driver_cannot_start_twice(self):
        plan = ChaosPlan(name="empty", horizon_ms=1_000.0)
        cluster, _ = _stabilized_cluster()
        driver = ChaosDriver(cluster, plan)
        driver.start()
        with pytest.raises(SimulationError, match="already started"):
            driver.start()


class TestAvailabilityObserver:
    def test_crash_opens_an_outage_and_reelection_closes_it(self):
        observer = AvailabilityObserver()
        plan = ChaosPlan(
            name="one-kill",
            horizon_ms=30_000.0,
            events=(CrashLeader(at_ms=1_000.0), Recover(at_ms=15_000.0)),
        )
        cluster, harness = _stabilized_cluster(extra_listeners=(observer,))
        observer.begin(cluster, cluster.world.now())
        driver = ChaosDriver(cluster, plan, observer=observer)
        driver.start()
        harness.run_for(plan.horizon_ms)
        report = observer.finalize(cluster.world.now())
        assert len(report.leaderless_intervals) == 1
        (start, end), = report.leaderless_intervals
        assert start < end
        assert 0.0 < report.unavailability < 1.0
        assert report.available_ms + report.leaderless_ms == pytest.approx(
            report.duration_ms
        )

    def test_isolated_leader_does_not_count_as_available(self):
        observer = AvailabilityObserver()
        plan = ChaosPlan(
            name="isolate",
            horizon_ms=30_000.0,
            events=(
                PartitionGroups(at_ms=1_000.0, isolate_leader=True),
                Heal(at_ms=20_000.0),
            ),
        )
        cluster, harness = _stabilized_cluster(extra_listeners=(observer,))
        observer.begin(cluster, cluster.world.now())
        driver = ChaosDriver(cluster, plan, observer=observer)
        driver.start()
        harness.run_for(plan.horizon_ms)
        report = observer.finalize(cluster.world.now())
        # The old leader keeps running behind the partition but cannot reach
        # a quorum, so the window shows a real outage until the majority side
        # elects a replacement.
        assert report.leaderless_ms > 0.0

    def test_cluster_available_tracks_quorum_capability(self):
        cluster, _ = _stabilized_cluster()
        assert cluster_available(cluster)
        leader = cluster.leader_id()
        others = tuple(
            member for member in cluster.config.server_ids if member != leader
        )
        cluster.network.partitions.partition((leader,), others)
        assert not cluster_available(cluster)  # stale leader lost its quorum
        cluster.network.partitions.heal()
        assert cluster_available(cluster)

    def test_finalize_before_begin_is_an_error(self):
        observer = AvailabilityObserver()
        with pytest.raises(SimulationError, match="never began"):
            observer.finalize(10.0)

    def test_begin_twice_is_an_error(self):
        observer = AvailabilityObserver()
        cluster, _ = _stabilized_cluster()
        observer.begin(cluster, cluster.world.now())
        with pytest.raises(SimulationError, match="already began"):
            observer.begin(cluster, cluster.world.now())


class TestChaosScenario:
    def test_unknown_protocol_fails_fast(self):
        plan = build_plan("repeated-leader-kill", horizon_ms=10_000.0)
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            ChaosScenario(protocol="paxos", cluster_size=5, plan=plan)

    def test_run_is_deterministic_and_picklable(self):
        plan = build_plan("repeated-leader-kill", horizon_ms=30_000.0, seed=2)
        scenario = ChaosScenario(protocol="escape", cluster_size=5, plan=plan)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.run(seed=11) == scenario.run(seed=11)

    def test_measurement_carries_client_and_driver_bookkeeping(self):
        plan = build_plan("repeated-leader-kill", horizon_ms=40_000.0, seed=1)
        scenario = ChaosScenario(protocol="raft", cluster_size=5, plan=plan)
        measurement = scenario.run(seed=4)
        assert measurement.plan == "repeated-leader-kill"
        assert measurement.duration_ms == pytest.approx(plan.horizon_ms)
        assert measurement.disruption_count >= 1
        assert measurement.outage_count == len(measurement.leaderless_intervals)
        assert len(measurement.recovery_ms) == measurement.outage_count
        assert measurement.proposals_proposed > 0
        assert measurement.proposals_dropped > 0  # leaderless ticks were seen
        assert measurement.extra["committed_entries"] >= 0
        assert 0.0 < measurement.unavailability < 1.0

    def test_partition_outages_are_visible_at_the_client(self):
        plan = build_plan("partition-flap", horizon_ms=40_000.0, seed=1)
        scenario = ChaosScenario(protocol="raft", cluster_size=5, plan=plan)
        measurement = scenario.run(seed=3)
        # The workload's quorum-aware leader selector refuses the stale
        # isolated leader, so leaderless intervals drop client proposals.
        assert measurement.leaderless_ms > 0.0
        assert measurement.proposals_dropped > 0

    def test_workload_can_be_disabled(self):
        plan = build_plan("repeated-leader-kill", horizon_ms=20_000.0, seed=1)
        scenario = ChaosScenario(
            protocol="raft", cluster_size=5, plan=plan, workload_interval_ms=0.0
        )
        measurement = scenario.run(seed=4)
        assert measurement.proposals_proposed == 0
        assert measurement.proposals_dropped == 0

    def test_election_scenario_view_shares_the_condition(self):
        plan = build_plan("partition-flap", horizon_ms=20_000.0)
        scenario = ChaosScenario(
            protocol="zraft",
            cluster_size=7,
            plan=plan,
            latency_range=(10.0, 20.0),
        )
        view = scenario.election_scenario()
        assert view.protocol == "zraft"
        assert view.cluster_size == 7
        assert view.latency_range == (10.0, 20.0)

"""Unit tests for trace sinks, filters, JSONL round-trips and archiving."""

import json
import pickle

import pytest

from repro.cluster.scenarios import ElectionScenario
from repro.obs.trace import (
    JsonlTraceSink,
    MemoryTraceSink,
    RingTraceSink,
    TRACE_MANIFEST_SCHEMA,
    TraceFilter,
    TraceSink,
    archive_election_traces,
    export_records,
    read_trace_jsonl,
    record_from_json,
    record_to_json,
    write_trace_jsonl,
)
from repro.sim.tracing import TraceRecord


def _records(count=5, category="election.start"):
    return [
        TraceRecord(time_ms=float(index), category=category, node=index % 2, detail={"i": index})
        for index in range(count)
    ]


class TestRecordJson:
    def test_round_trips_including_none_node(self):
        record = TraceRecord(time_ms=12.5, category="net.drop", node=None, detail={"k": [1, 2]})
        assert record_from_json(record_to_json(record)) == record

    def test_survives_an_actual_json_encode(self):
        record = _records(1)[0]
        assert record_from_json(json.loads(json.dumps(record_to_json(record)))) == record


class TestSinks:
    def test_memory_sink_collects_and_closes(self):
        sink = MemoryTraceSink()
        assert isinstance(sink, TraceSink)
        for record in _records(3):
            sink.write(record)
        assert len(sink.records) == 3
        sink.close()
        assert sink.closed

    def test_ring_sink_keeps_newest_and_counts_drops(self):
        sink = RingTraceSink(capacity=3)
        assert isinstance(sink, TraceSink)
        records = _records(5)
        for record in records:
            sink.write(record)
        assert sink.records == tuple(records[2:])
        assert sink.dropped_count == 2
        assert sink.capacity == 3

    def test_ring_sink_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            RingTraceSink(capacity=0)

    def test_jsonl_sink_round_trips_losslessly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = _records(4)
        with JsonlTraceSink(path) as sink:
            for record in records:
                sink.write(record)
        assert sink.written == 4
        assert read_trace_jsonl(path) == records


class TestTraceFilter:
    def test_is_frozen_hashable_and_picklable(self):
        trace_filter = TraceFilter(categories=("election.",), nodes=(1, 2))
        assert hash(trace_filter) == hash(TraceFilter(("election.",), (1, 2)))
        assert pickle.loads(pickle.dumps(trace_filter)) == trace_filter

    def test_coerces_sequences_to_tuples(self):
        trace_filter = TraceFilter(categories=["a"], nodes=[1])
        assert trace_filter.categories == ("a",)
        assert trace_filter.nodes == (1,)

    def test_category_prefix_matching(self):
        trace_filter = TraceFilter(categories=("election.",))
        assert trace_filter.matches(TraceRecord(0.0, "election.start"))
        assert not trace_filter.matches(TraceRecord(0.0, "net.drop"))

    def test_cluster_wide_records_pass_the_node_filter(self):
        trace_filter = TraceFilter(nodes=(1,))
        assert trace_filter.matches(TraceRecord(0.0, "crash", node=None))
        assert trace_filter.matches(TraceRecord(0.0, "x", node=1))
        assert not trace_filter.matches(TraceRecord(0.0, "x", node=2))

    def test_empty_filter_matches_everything(self):
        trace_filter = TraceFilter()
        for record in _records(3):
            assert trace_filter.matches(record)

    def test_export_records_applies_the_filter(self):
        sink = MemoryTraceSink()
        records = _records(4, category="election.start") + _records(2, category="net.drop")
        written = export_records(records, sink, TraceFilter(categories=("election.",)))
        assert written == 4
        assert all(r.category == "election.start" for r in sink.records)

    def test_write_trace_jsonl_reports_the_written_count(self, tmp_path):
        path = tmp_path / "filtered.jsonl"
        records = _records(4, category="a") + _records(2, category="b")
        written = write_trace_jsonl(path, records, TraceFilter(categories=("b",)))
        assert written == 2
        assert len(read_trace_jsonl(path)) == 2


class TestArchive:
    def test_archives_one_traced_episode_per_label(self, tmp_path):
        scenarios = {
            "raft@3": ElectionScenario(protocol="raft", cluster_size=3),
            "escape@3": ElectionScenario(protocol="escape", cluster_size=3),
        }
        manifest = archive_election_traces(scenarios, seed=7, directory=tmp_path)
        assert manifest["schema"] == TRACE_MANIFEST_SCHEMA
        assert manifest["seed"] == 7
        assert set(manifest["labels"]) == set(scenarios)
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk == manifest
        for label, entry in manifest["labels"].items():
            records = read_trace_jsonl(tmp_path / entry["file"])
            assert len(records) == entry["records"] > 0
            assert entry["filtered_out"] == 0
        # Scenario telemetry rides along into telemetry.json.
        telemetry = json.loads((tmp_path / "telemetry.json").read_text())
        assert set(telemetry["labels"]) == set(scenarios)
        for state in telemetry["labels"].values():
            assert state["counters"]["node.elections_won"] >= 1
        assert manifest["telemetry"] == "telemetry.json"

    def test_archive_honours_a_filter(self, tmp_path):
        scenarios = {"raft@3": ElectionScenario(protocol="raft", cluster_size=3)}
        trace_filter = TraceFilter(categories=("election.",))
        manifest = archive_election_traces(
            scenarios, seed=0, directory=tmp_path, trace_filter=trace_filter
        )
        entry = manifest["labels"]["raft@3"]
        assert entry["filtered_out"] > 0
        assert manifest["filter"] == {"categories": ["election."], "nodes": []}
        for record in read_trace_jsonl(tmp_path / entry["file"]):
            assert record.category.startswith("election.")

    def test_archived_episode_matches_the_sweep_seed_derivation(self, tmp_path):
        from repro.common.rng import paired_seeds

        scenarios = {"raft@3": ElectionScenario(protocol="raft", cluster_size=3)}
        manifest = archive_election_traces(scenarios, seed=42, directory=tmp_path)
        expected = paired_seeds(1, 42, "raft@3")[0]
        assert manifest["labels"]["raft@3"]["episode_seed"] == expected

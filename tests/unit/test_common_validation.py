"""Unit tests for repro.common.validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    require_fraction,
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_ordered_pair,
    require_positive,
    require_unique,
)


class TestRequirePositive:
    def test_returns_value_when_positive(self):
        assert require_positive(5, "x") == 5
        assert require_positive(0.1, "x") == 0.1

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ConfigurationError, match="x must be positive"):
            require_positive(0, "x")
        with pytest.raises(ConfigurationError):
            require_positive(-1.5, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.001, "x")


class TestRequireInRange:
    def test_accepts_bounds_inclusively(self):
        assert require_in_range(1, 1, 10, "x") == 1
        assert require_in_range(10, 1, 10, "x") == 10

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError, match=r"\[1, 10\]"):
            require_in_range(11, 1, 10, "x")


class TestRequireFraction:
    def test_accepts_probabilities(self):
        assert require_fraction(0.0, "p") == 0.0
        assert require_fraction(1.0, "p") == 1.0

    def test_rejects_values_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            require_fraction(1.2, "p")


class TestRequireOrderedPair:
    def test_accepts_equal_and_increasing(self):
        assert require_ordered_pair(1, 1, "pair") == (1, 1)
        assert require_ordered_pair(1, 2, "pair") == (1, 2)

    def test_rejects_decreasing(self):
        with pytest.raises(ConfigurationError, match="ordered pair"):
            require_ordered_pair(3, 2, "pair")


class TestRequireUnique:
    def test_accepts_unique_values(self):
        assert list(require_unique([1, 2, 3], "ids")) == [1, 2, 3]

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            require_unique([1, 2, 1], "ids")


class TestRequireNonEmpty:
    def test_returns_list_copy(self):
        assert require_non_empty((1, 2), "xs") == [1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            require_non_empty([], "xs")

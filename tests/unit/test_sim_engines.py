"""The simulation-engine registry and the engine seam.

Covers the registry conformance contract (mirroring
:mod:`repro.protocols` / :mod:`repro.experiments`): registration collisions,
unknown-name errors that list the registered names, lazy ``module:ClassName``
resolution, and the default-engine resolution order (explicit argument >
:func:`set_default_engine` override > ``REPRO_ENGINE`` > ``classic``).

Also pins two regressions on the scheduler seam itself: non-finite
``call_at`` deadlines must be rejected by *both* engines (a NaN would poison
the heap invariant silently), and in-flight drops must emit the same
``net.drop`` trace schema on both engines.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.environment import FlatSimNodeEnvironment, SimNodeEnvironment
from repro.cluster.scenarios import ElectionScenario
from repro.chaos.plans import build_plan
from repro.chaos.scenario import ChaosScenario
from repro.common.errors import ConfigurationError, SimulationError
from repro.net.flatnet import FlatNetwork
from repro.net.network import SimulatedNetwork
from repro.sim import engines
from repro.sim.engines import EngineSpec
from repro.sim.flatcore import FlatEventScheduler
from repro.sim.scheduler import EventScheduler
from repro.sim.world import SimulationWorld

ENGINE_NAMES = ("classic", "flat")


@pytest.fixture(autouse=True)
def _clean_default_engine():
    """No test may leak a process-wide default-engine override."""
    yield
    engines.set_default_engine(None)


def _spec(name: str = "custom") -> EngineSpec:
    return EngineSpec(
        name=name,
        title="Custom engine",
        scheduler_path="repro.sim.scheduler:EventScheduler",
        network_path="repro.net.network:SimulatedNetwork",
        environment_path="repro.cluster.environment:SimNodeEnvironment",
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(ENGINE_NAMES) <= set(engines.names())
        assert engines.is_registered("classic")
        assert engines.is_registered("flat")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="classic.*flat|flat.*classic"):
            engines.get("warp")

    def test_register_unregister_round_trip(self):
        spec = engines.register(_spec())
        try:
            assert engines.get("custom") is spec
            assert "custom" in engines.names()
            assert engines.titles()["custom"] == "Custom engine"
        finally:
            assert engines.unregister("custom") is spec
        assert not engines.is_registered("custom")

    def test_duplicate_registration_needs_replace(self):
        engines.register(_spec())
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                engines.register(_spec())
            engines.register(_spec(), replace=True)
        finally:
            engines.unregister("custom")

    def test_registered_specs_pairs_match_names(self):
        assert tuple(name for name, _ in engines.registered_specs()) == engines.names()


class TestEngineSpecValidation:
    def test_rejects_bad_names(self):
        for bad in ("", "two words", "a,b"):
            with pytest.raises(ConfigurationError, match="must be non-empty"):
                _spec(bad)

    def test_rejects_malformed_class_paths(self):
        with pytest.raises(ConfigurationError, match="module:ClassName"):
            EngineSpec(
                name="broken",
                title="broken",
                scheduler_path="repro.sim.scheduler.EventScheduler",  # dot, no colon
                network_path="repro.net.network:SimulatedNetwork",
                environment_path="repro.cluster.environment:SimNodeEnvironment",
            )

    def test_unresolvable_path_fails_at_use_not_registration(self):
        spec = EngineSpec(
            name="ghost",
            title="ghost",
            scheduler_path="repro.sim.scheduler:NoSuchClass",
            network_path="repro.net.network:SimulatedNetwork",
            environment_path="repro.cluster.environment:SimNodeEnvironment",
        )
        with pytest.raises(ConfigurationError, match="does not resolve"):
            spec.scheduler_class()

    def test_builtin_paths_resolve_to_the_engine_classes(self):
        classic, flat = engines.get("classic"), engines.get("flat")
        assert classic.scheduler_class() is EventScheduler
        assert classic.network_class() is SimulatedNetwork
        assert classic.environment_class() is SimNodeEnvironment
        assert flat.scheduler_class() is FlatEventScheduler
        assert flat.network_class() is FlatNetwork
        assert flat.environment_class() is FlatSimNodeEnvironment


class TestDefaultResolution:
    def test_default_is_classic(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert engines.default_engine_name() == "classic"

    def test_env_variable_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "flat")
        assert engines.default_engine_name() == "flat"

    def test_env_variable_is_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigurationError, match="unknown engine"):
            engines.default_engine_name()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "flat")
        engines.set_default_engine("classic")
        assert engines.default_engine_name() == "classic"
        engines.set_default_engine(None)
        assert engines.default_engine_name() == "flat"

    def test_set_default_engine_validates(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            engines.set_default_engine("warp")

    def test_using_engine_yields_and_restores(self):
        # Pick whichever built-in is NOT the ambient default, so the test is
        # meaningful when the suite itself runs under REPRO_ENGINE=flat.
        before = engines.default_engine_name()
        other = "flat" if before != "flat" else "classic"
        with engines.using_engine(other) as resolved:
            assert resolved == other
            assert engines.default_engine_name() == other
        assert engines.default_engine_name() == before

    def test_using_engine_none_keeps_current(self):
        engines.set_default_engine("flat")
        with engines.using_engine(None) as resolved:
            assert resolved == "flat"

    def test_using_engine_restores_after_exception(self):
        before = engines.default_engine_name()
        other = "flat" if before != "flat" else "classic"
        with pytest.raises(RuntimeError):
            with engines.using_engine(other):
                raise RuntimeError("boom")
        assert engines.default_engine_name() == before

    def test_resolve_accepts_name_spec_and_none(self):
        flat = engines.get("flat")
        assert engines.resolve("flat") is flat
        assert engines.resolve(flat) is flat
        assert engines.resolve(None) is engines.get(engines.default_engine_name())
        with pytest.raises(ConfigurationError, match="unknown engine"):
            engines.resolve("warp")


class TestWorldAndClusterWiring:
    def test_world_builds_the_engine_scheduler(self):
        assert isinstance(SimulationWorld(engine="classic").scheduler, EventScheduler)
        assert isinstance(SimulationWorld(engine="flat").scheduler, FlatEventScheduler)

    def test_world_default_engine_follows_process_default(self):
        engines.set_default_engine("flat")
        assert SimulationWorld().engine.name == "flat"

    def test_build_cluster_uses_matching_network_and_environment(self):
        cluster = build_cluster("raft", size=3, engine="flat", trace=False)
        assert isinstance(cluster.network, FlatNetwork)
        assert all(
            isinstance(node.env, FlatSimNodeEnvironment)
            for node in cluster.nodes.values()
        )
        classic = build_cluster("raft", size=3, engine="classic", trace=False)
        assert isinstance(classic.network, SimulatedNetwork)
        assert all(
            isinstance(node.env, SimNodeEnvironment)
            for node in classic.nodes.values()
        )

    def test_scenario_engine_field_is_validated_and_threaded(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            ElectionScenario(protocol="raft", cluster_size=3, engine="warp")
        scenario = ElectionScenario(protocol="raft", cluster_size=3).with_engine("flat")
        assert scenario.engine == "flat"
        cluster, _ = scenario.build(seed=1)
        assert isinstance(cluster.network, FlatNetwork)

    def test_scenario_empty_engine_defers_to_process_default(self):
        engines.set_default_engine("flat")
        cluster, _ = ElectionScenario(protocol="raft", cluster_size=3).build(seed=1)
        assert isinstance(cluster.network, FlatNetwork)

    def test_chaos_scenario_threads_engine(self):
        plan = build_plan("repeated-leader-kill", horizon_ms=30_000.0, seed=0)
        scenario = ChaosScenario(
            protocol="raft", cluster_size=3, plan=plan
        ).with_engine("flat")
        assert scenario.election_scenario().engine == "flat"


@pytest.mark.parametrize("engine", ENGINE_NAMES)
class TestCallAtValidation:
    """Regression: a NaN deadline used to be accepted and poison heap order."""

    def test_rejects_nan(self, engine):
        world = SimulationWorld(engine=engine)
        with pytest.raises(SimulationError, match="non-finite"):
            world.scheduler.call_at(math.nan, lambda: None)

    def test_rejects_infinity(self, engine):
        world = SimulationWorld(engine=engine)
        for deadline in (math.inf, -math.inf):
            with pytest.raises(SimulationError, match="non-finite"):
                world.scheduler.call_at(deadline, lambda: None)

    def test_accepts_finite_past_deadline_semantics_unchanged(self, engine):
        world = SimulationWorld(engine=engine)
        fired = []
        world.scheduler.call_at(5.0, lambda: fired.append(world.now()))
        world.scheduler.run_until_idle()
        assert fired == [5.0]


@pytest.mark.parametrize("engine", ENGINE_NAMES)
class TestInFlightDropTraces:
    """Both engines emit the ``net.drop`` schema for delivery-time drops."""

    @staticmethod
    def _world_and_network(engine):
        from repro.net.latency import ConstantLatency

        world = SimulationWorld(seed=7, engine=engine)
        network_class = engines.get(engine).network_class()
        network = network_class(
            world, members=(1, 2, 3), latency=ConstantLatency(10.0)
        )
        for member in (1, 2, 3):
            network.register(member, lambda payload, src: None)
        return world, network

    def test_disconnect_drop_carries_in_flight_flag(self, engine):
        world, network = self._world_and_network(engine)
        network.send(1, 2, "hello")
        network.disconnect(2)
        world.scheduler.run_until_idle()
        drops = [
            record
            for record in world.tracer.records
            if record.category == "net.drop"
        ]
        assert [dict(record.detail) for record in drops] == [
            {"dst": 2, "reason": "disconnected", "in_flight": True}
        ]
        assert network.stats.dropped_disconnected == 1
        assert network.stats.delivered == 0

    def test_partition_drop_carries_in_flight_flag(self, engine):
        world, network = self._world_and_network(engine)
        network.send(1, 2, "hello")
        network.partitions.partition([1], [2, 3])
        world.scheduler.run_until_idle()
        drops = [
            record
            for record in world.tracer.records
            if record.category == "net.drop"
        ]
        assert [dict(record.detail) for record in drops] == [
            {"dst": 2, "reason": "partition", "in_flight": True}
        ]
        assert network.stats.dropped_by_partition == 1

"""Unit tests for RaftNode leader election, driven through a fake environment."""

import pytest

from helpers import FakeEnvironment, fast_protocol_config, small_cluster

from repro.common.errors import NotLeaderError, ProtocolError
from repro.raft.messages import (
    AppendEntriesRequest,
    RequestVoteRequest,
    RequestVoteResponse,
)
from repro.raft.node import RaftNode
from repro.raft.state import Role
from repro.raft.timers import FixedTimeoutPolicy
from repro.storage.log import LogEntry
from repro.storage.persistent import InMemoryStore


def make_node(node_id=1, size=3, env=None, **kwargs):
    env = env if env is not None else FakeEnvironment(node_id=node_id)
    node = RaftNode(
        node_id=node_id,
        cluster=small_cluster(size),
        env=env,
        protocol_config=kwargs.pop("protocol_config", fast_protocol_config()),
        **kwargs,
    )
    return node, env


class TestStartup:
    def test_node_starts_as_follower_with_election_timer(self):
        node, env = make_node()
        node.start()
        assert node.role is Role.FOLLOWER
        assert node.is_running
        assert "S1:election-timeout" in env.pending_timer_labels()

    def test_double_start_rejected(self):
        node, _ = make_node()
        node.start()
        with pytest.raises(ProtocolError):
            node.start()

    def test_node_id_must_belong_to_cluster(self):
        with pytest.raises(ProtocolError):
            RaftNode(node_id=9, cluster=small_cluster(3), env=FakeEnvironment())


class TestBecomingCandidate:
    def test_election_timeout_starts_a_campaign(self):
        node, env = make_node()
        node.start()
        env.fire_next_timer("S1:election-timeout")
        assert node.role is Role.CANDIDATE
        assert node.current_term == 1
        assert node.voted_for == 1
        requests = env.sent_payloads(RequestVoteRequest)
        assert len(requests) == 2  # one per peer
        assert all(request.term == 1 for request in requests)

    def test_campaign_includes_log_position(self):
        store = InMemoryStore()
        log = store.load_log()
        log.append_entry(LogEntry(term=3, index=1, command="x"))
        store.save_term_and_vote(3, None)
        node, env = make_node(store=store)
        node.start()
        env.fire_next_timer("S1:election-timeout")
        request = env.sent_payloads(RequestVoteRequest)[0]
        assert request.last_log_index == 1
        assert request.last_log_term == 3
        assert request.term == 4

    def test_winning_quorum_promotes_to_leader_and_sends_heartbeats(self):
        node, env = make_node()
        node.start()
        env.fire_next_timer("S1:election-timeout")
        env.clear_sent()
        node.on_message(2, RequestVoteResponse(term=1, voter_id=2, vote_granted=True))
        assert node.role is Role.LEADER
        assert node.leader_id == 1
        heartbeats = env.sent_payloads(AppendEntriesRequest)
        assert len(heartbeats) == 2
        assert all(hb.is_heartbeat for hb in heartbeats)

    def test_denied_votes_do_not_promote(self):
        node, env = make_node(size=5)
        node.start()
        env.fire_next_timer("S1:election-timeout")
        node.on_message(2, RequestVoteResponse(term=1, voter_id=2, vote_granted=False))
        node.on_message(3, RequestVoteResponse(term=1, voter_id=3, vote_granted=False))
        assert node.role is Role.CANDIDATE

    def test_stale_vote_responses_are_ignored(self):
        node, env = make_node(size=5)
        node.start()
        env.fire_next_timer("S1:election-timeout")  # term 1
        env.fire_next_timer("S1:election-timeout")  # term 2, new campaign
        node.on_message(2, RequestVoteResponse(term=1, voter_id=2, vote_granted=True))
        node.on_message(3, RequestVoteResponse(term=1, voter_id=3, vote_granted=True))
        assert node.role is Role.CANDIDATE  # old-term votes must not count

    def test_higher_term_response_forces_step_down(self):
        node, env = make_node()
        node.start()
        env.fire_next_timer("S1:election-timeout")
        node.on_message(2, RequestVoteResponse(term=7, voter_id=2, vote_granted=False))
        assert node.role is Role.FOLLOWER
        assert node.current_term == 7

    def test_single_node_cluster_elects_itself_immediately(self):
        node, env = make_node(node_id=1, size=1)
        node.start()
        env.fire_next_timer("S1:election-timeout")
        assert node.role is Role.LEADER

    def test_vote_requests_are_retransmitted_to_silent_peers(self):
        node, env = make_node(size=5)
        node.start()
        env.fire_next_timer("S1:election-timeout")
        node.on_message(2, RequestVoteResponse(term=1, voter_id=2, vote_granted=True))
        env.clear_sent()
        env.fire_next_timer("S1:vote-retry")
        retried = env.sent_payloads(RequestVoteRequest)
        # Peers 3, 4, 5 have not granted yet; peer 2 must not be spammed again.
        assert {message.dst for message in env.sent} == {3, 4, 5}
        assert all(request.term == 1 for request in retried)

    def test_vote_retry_stops_after_becoming_leader(self):
        node, env = make_node(size=3)
        node.start()
        env.fire_next_timer("S1:election-timeout")
        node.on_message(2, RequestVoteResponse(term=1, voter_id=2, vote_granted=True))
        assert node.role is Role.LEADER
        assert not any(
            label == "S1:vote-retry" for label in env.pending_timer_labels()
        )


class TestGrantingVotes:
    def test_grants_vote_to_up_to_date_candidate(self):
        node, env = make_node(node_id=2)
        node.start()
        node.on_message(
            3, RequestVoteRequest(term=1, candidate_id=3, last_log_index=0, last_log_term=0)
        )
        response = env.sent_to(3)[0]
        assert isinstance(response, RequestVoteResponse)
        assert response.vote_granted
        assert node.voted_for == 3
        assert node.current_term == 1

    def test_refuses_second_vote_in_same_term(self):
        node, env = make_node(node_id=2)
        node.start()
        node.on_message(3, RequestVoteRequest(term=1, candidate_id=3))
        node.on_message(1, RequestVoteRequest(term=1, candidate_id=1))
        first, second = env.sent_to(3)[0], env.sent_to(1)[0]
        assert first.vote_granted
        assert not second.vote_granted

    def test_repeated_request_from_same_candidate_is_granted_again(self):
        # Idempotent re-grant supports the candidate's retransmission.
        node, env = make_node(node_id=2)
        node.start()
        node.on_message(3, RequestVoteRequest(term=1, candidate_id=3))
        node.on_message(3, RequestVoteRequest(term=1, candidate_id=3))
        responses = env.sent_to(3)
        assert all(response.vote_granted for response in responses)

    def test_refuses_candidate_with_stale_term(self):
        store = InMemoryStore()
        store.save_term_and_vote(5, None)
        node, env = make_node(node_id=2, store=store)
        node.start()
        node.on_message(3, RequestVoteRequest(term=4, candidate_id=3))
        response = env.sent_to(3)[0]
        assert not response.vote_granted
        assert response.term == 5

    def test_refuses_candidate_with_stale_log(self):
        store = InMemoryStore()
        store.load_log().append_entry(LogEntry(term=2, index=1, command="x"))
        node, env = make_node(node_id=2, store=store)
        node.start()
        node.on_message(
            3, RequestVoteRequest(term=3, candidate_id=3, last_log_index=0, last_log_term=0)
        )
        response = env.sent_to(3)[0]
        assert not response.vote_granted
        # The term still advances (Eq. 3 / Raft rule) even though the vote is denied.
        assert node.current_term == 3

    def test_granting_a_vote_restarts_the_election_timer(self):
        node, env = make_node(node_id=2)
        node.start()
        first_timer = env.pending_timers()[0]
        node.on_message(3, RequestVoteRequest(term=1, candidate_id=3))
        assert first_timer.cancelled
        assert "S2:election-timeout" in env.pending_timer_labels()

    def test_denied_vote_does_not_restart_the_election_timer(self):
        store = InMemoryStore()
        store.load_log().append_entry(LogEntry(term=2, index=1, command="x"))
        node, env = make_node(node_id=2, store=store)
        node.start()
        first_timer = env.pending_timers()[0]
        node.on_message(3, RequestVoteRequest(term=3, candidate_id=3))
        assert not first_timer.cancelled


class TestTermHandling:
    def test_terms_never_move_backwards(self):
        store = InMemoryStore()
        store.save_term_and_vote(9, None)
        node, env = make_node(store=store)
        node.start()
        node.on_message(2, RequestVoteRequest(term=3, candidate_id=2))
        assert node.current_term == 9

    def test_crashed_node_ignores_messages(self):
        node, env = make_node()
        node.start()
        node.stop()
        node.on_message(2, RequestVoteRequest(term=1, candidate_id=2))
        assert env.sent == []

    def test_unknown_message_type_rejected(self):
        node, _ = make_node()
        node.start()
        with pytest.raises(ProtocolError):
            node.on_message(2, object())


class TestProposalsRequireLeadership:
    def test_follower_rejects_proposals_and_names_leader(self):
        node, env = make_node(node_id=2)
        node.start()
        node.on_message(
            1, AppendEntriesRequest(term=1, leader_id=1, prev_log_index=0, prev_log_term=0)
        )
        with pytest.raises(NotLeaderError) as excinfo:
            node.propose("x")
        assert excinfo.value.known_leader == 1

    def test_leader_timeout_policy_not_used_while_leading(self):
        node, env = make_node(timeout_policy=FixedTimeoutPolicy(100.0))
        node.start()
        env.fire_next_timer("S1:election-timeout")
        node.on_message(2, RequestVoteResponse(term=1, voter_id=2, vote_granted=True))
        assert node.role is Role.LEADER
        # The election timer is cancelled for a leader.
        assert "S1:election-timeout" not in env.pending_timer_labels()

"""Fixture tests for the registry rules (S1 spec purity, S2 completeness).

The fixture specs are defined at module level so they pickle by reference --
the point of S1 is that registered values must survive the multiprocessing
boundary, and a fixture that cannot pickle for unrelated reasons would
drown the violation under test.
"""

import dataclasses

from repro.experiments.spec import ExperimentSpec
from repro.lint.model import DEFAULT_CONFIG
from repro.lint.rules_registry import (
    check_experiment_registry,
    check_registered_specs,
    iter_spec_problems,
    load_registries,
)


# --------------------------------------------------------------------------- #
# S1 fixtures
# --------------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class _PureSpec:
    name: str
    sizes: tuple = (3, 5)


@dataclasses.dataclass
class _UnfrozenSpec:
    name: str


@dataclasses.dataclass(frozen=True)
class _MutableDefaultSpec:
    name: str
    params: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class _CallableSpec:
    name: str
    run: object = None


def _messages(findings):
    return [finding.message for finding in findings]


class TestS1SpecPurity:
    def test_pure_spec_has_no_problems(self):
        assert iter_spec_problems("fx", "pure", _PureSpec("pure")) == []

    def test_non_dataclass_is_flagged(self):
        findings = iter_spec_problems("fx", "raw", {"name": "raw"})
        assert len(findings) == 1
        assert "not a dataclass instance" in findings[0].message

    def test_unfrozen_spec_is_flagged(self):
        findings = iter_spec_problems("fx", "soft", _UnfrozenSpec("soft"))
        assert any("not frozen" in m for m in _messages(findings))

    def test_mutable_default_and_unhashable_field_are_flagged(self):
        findings = iter_spec_problems(
            "fx", "muddy", _MutableDefaultSpec("muddy", params={"k": 1})
        )
        messages = _messages(findings)
        assert any("mutable dict" in m for m in messages)
        assert any("unhashable dict" in m for m in messages)
        assert any("not hashable" in m for m in messages)

    def test_lambda_field_is_flagged_at_the_lambda(self):
        spec = _CallableSpec("sneaky", run=lambda: None)
        findings = iter_spec_problems("fx", "sneaky", spec)
        assert any("lambda/closure" in m for m in _messages(findings))
        # The finding anchors to this test file (where the lambda lives),
        # not to the dataclass definition.
        lambda_finding = next(
            f for f in findings if "lambda/closure" in f.message
        )
        assert lambda_finding.path.endswith("test_lint_registry_rules.py")

    def test_all_six_live_registries_are_pure(self):
        registries = load_registries()
        assert set(registries) == {
            "protocols",
            "experiments",
            "net-conditions",
            "chaos-plans",
            "engines",
            "workloads",
        }
        assert all(pairs for pairs in registries.values())
        assert check_registered_specs(DEFAULT_CONFIG) == []


# --------------------------------------------------------------------------- #
# S2 fixtures
# --------------------------------------------------------------------------- #
def _report(result) -> str:
    return "fixture report"


def _run_full(*, runs, seed, workers=None, progress=None, scenario=None):
    return None


def _run_no_scenario(*, runs, seed, workers=None, progress=None):
    return None


def _run_minimal(*, runs, seed):
    return None


def _s2(specs):
    return check_experiment_registry(
        DEFAULT_CONFIG, specs_by_name={spec.name: spec for spec in specs}
    )


class TestS2RegistryCompleteness:
    def test_matching_flags_pass(self):
        spec = ExperimentSpec(
            name="fx-ok",
            title="fixture",
            run=_run_full,
            reporter=_report,
            supports_scenario=True,
        )
        assert _s2([spec]) == []

    def test_declared_capability_missing_from_run_is_flagged(self):
        spec = ExperimentSpec(
            name="fx-missing",
            title="fixture",
            run=_run_no_scenario,
            reporter=_report,
            supports_scenario=True,
        )
        findings = _s2([spec])
        assert len(findings) == 1
        assert "declares 'scenario'" in findings[0].message

    def test_undeclared_capability_in_run_is_flagged(self):
        spec = ExperimentSpec(
            name="fx-hidden",
            title="fixture",
            run=_run_full,
            reporter=_report,
        )
        findings = _s2([spec])
        assert len(findings) == 1
        assert "silently unreachable" in findings[0].message

    def test_missing_worker_keywords_are_flagged(self):
        spec = ExperimentSpec(
            name="fx-serial",
            title="fixture",
            run=_run_minimal,
            reporter=_report,
        )
        messages = _messages(_s2([spec]))
        assert any("'progress'" in m for m in messages)
        assert any("'workers'" in m for m in messages)
        # Declaring supports_workers=False makes the same callable complete.
        quiet = dataclasses.replace(spec, supports_workers=False)
        assert _s2([quiet]) == []

    def test_two_specs_from_one_experiments_module_are_flagged(self):
        first = ExperimentSpec(
            name="fx-a", title="a", run=_run_full, reporter=_report
        )
        second = ExperimentSpec(
            name="fx-b", title="b", run=_run_full, reporter=_report
        )
        # Simulate both run callables living in one repro.experiments module.
        object.__setattr__(first, "run", _fake_module_run_a)
        object.__setattr__(second, "run", _fake_module_run_b)
        messages = _messages(_s2([first, second]))
        assert any("registers 2 experiment specs" in m for m in messages)

    def test_live_experiment_registry_is_complete(self):
        assert check_experiment_registry(DEFAULT_CONFIG) == []


def _fake_module_run_a(*, runs, seed, workers=None, progress=None):
    return None


def _fake_module_run_b(*, runs, seed, workers=None, progress=None):
    return None


_fake_module_run_a.__module__ = "repro.experiments.fx_fixture"
_fake_module_run_b.__module__ = "repro.experiments.fx_fixture"

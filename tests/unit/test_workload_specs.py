"""Unit tests for the workload spec registry (the sixth spec registry)."""

import pickle
from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError
from repro.workload import specs
from repro.workload.specs import KeyspaceSpec, ValueSizeSpec, WorkloadSpec

BUILTINS = (
    "legacy-interval",
    "closed-loop",
    "open-poisson",
    "open-uniform",
    "open-burst",
)


class TestRegistry:
    def test_builtins_are_registered_in_order(self):
        assert specs.names() == BUILTINS

    def test_get_returns_the_registered_spec(self):
        spec = specs.get("closed-loop")
        assert spec.name == "closed-loop"
        assert spec.mode == "closed"

    def test_unknown_name_lists_the_alternatives(self):
        with pytest.raises(ConfigurationError, match="closed-loop"):
            specs.get("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            specs.register(WorkloadSpec(name="closed-loop"))

    def test_is_registered(self):
        assert specs.is_registered("open-burst")
        assert not specs.is_registered("open-pareto")

    def test_registered_specs_enumerates_name_spec_pairs(self):
        pairs = specs.registered_specs()
        assert tuple(name for name, _ in pairs) == BUILTINS
        assert all(isinstance(spec, WorkloadSpec) for _, spec in pairs)

    def test_legacy_interval_rebinds_the_period(self):
        spec = specs.legacy_interval(125.0)
        assert spec.mode == "legacy-interval"
        assert spec.interval_ms == 125.0
        assert not spec.tracked
        # The registered prototype is untouched.
        assert specs.get("legacy-interval").interval_ms == 250.0

    def test_every_builtin_survives_pickling(self):
        for _, spec in specs.registered_specs():
            assert pickle.loads(pickle.dumps(spec)) == spec
            hash(spec)


class TestWorkloadSpecValidation:
    def test_tracked_covers_all_but_legacy(self):
        assert WorkloadSpec(name="w", mode="closed").tracked
        assert WorkloadSpec(name="w", mode="open").tracked
        assert not WorkloadSpec(name="w", mode="legacy-interval").tracked

    def test_name_required(self):
        with pytest.raises(ConfigurationError, match="needs a name"):
            WorkloadSpec(name="")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload mode"):
            WorkloadSpec(name="w", mode="half-open")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "closed", "clients": 0},
            {"mode": "closed", "think_time_ms": 0.0},
            {"mode": "open", "arrival": "pareto"},
            {"mode": "open", "arrival": "poisson", "rate_per_s": 0.0},
            {"mode": "open", "arrival": "uniform", "rate_per_s": -1.0},
            {"mode": "open", "arrival": "burst", "burst_size": 0},
            {"mode": "open", "arrival": "burst", "burst_interval_ms": 0.0},
            {"mode": "legacy-interval", "interval_ms": 0.0},
            {"max_retries": -1},
            {"retry_backoff_ms": -1.0},
            {"request_timeout_ms": 0.0},
        ],
    )
    def test_invalid_shapes_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="w", **overrides)

    def test_specs_are_frozen(self):
        spec = specs.get("open-poisson")
        with pytest.raises(AttributeError):
            spec.rate_per_s = 99.0


class TestKeyspaceSpec:
    def test_defaults_match_the_legacy_keyspace(self):
        assert KeyspaceSpec().keys == 16
        assert KeyspaceSpec().mode == "round-robin"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "zipf"},
            {"keys": 0},
            {"mode": "hotspot", "keys": 1},
            {"mode": "hotspot", "hot_fraction": 0.0},
            {"mode": "hotspot", "hot_fraction": 1.0},
            {"mode": "hotspot", "hot_share": 0.0},
            {"mode": "hotspot", "hot_share": 1.5},
        ],
    )
    def test_invalid_keyspaces_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            KeyspaceSpec(**overrides)

    def test_hotspot_shape_accepted(self):
        spec = KeyspaceSpec(mode="hotspot", keys=32, hot_fraction=0.25)
        assert replace(spec, hot_share=1.0).hot_share == 1.0


class TestValueSizeSpec:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "lognormal"},
            {"mode": "fixed", "size": 0},
            {"mode": "uniform", "min_size": 0},
            {"mode": "uniform", "min_size": 9, "max_size": 8},
        ],
    )
    def test_invalid_sizes_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ValueSizeSpec(**overrides)

    def test_uniform_range_accepted(self):
        spec = ValueSizeSpec(mode="uniform", min_size=8, max_size=8)
        assert (spec.min_size, spec.max_size) == (8, 8)

"""Unit tests for the chaos event specs, plan generators and the catalog."""

import pickle

import pytest

from repro.chaos.plans import (
    CHAOS_CATALOG,
    ChaosPlan,
    build_plan,
    chaos_storm,
    get_plan_entry,
    partition_flap,
    plan_names,
    repeated_leader_kill,
    rolling_restart,
)
from repro.chaos.specs import (
    ChaosEvent,
    CrashLeader,
    CrashServer,
    Heal,
    PartitionGroups,
    Recover,
    SwapFault,
)
from repro.common.errors import ConfigurationError
from repro.net.specs import PacketLossSpec


class TestChaosEvents:
    def test_events_are_frozen_values(self):
        event = CrashServer(at_ms=100.0, server_index=2)
        with pytest.raises(AttributeError):
            event.at_ms = 5.0
        assert event == CrashServer(at_ms=100.0, server_index=2)

    def test_negative_fire_time_is_rejected(self):
        with pytest.raises(ConfigurationError, match="at_ms"):
            CrashLeader(at_ms=-1.0)

    def test_negative_server_index_is_rejected(self):
        with pytest.raises(ConfigurationError, match="server_index"):
            CrashServer(at_ms=0.0, server_index=-1)

    def test_partition_needs_positive_group_count(self):
        with pytest.raises(ConfigurationError, match="group_count"):
            PartitionGroups(at_ms=0.0, group_count=0)

    def test_swap_fault_requires_a_fault_spec(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            SwapFault(at_ms=0.0, fault="loss")  # type: ignore[arg-type]

    def test_every_event_kind_pickles(self):
        events = (
            CrashLeader(at_ms=1.0),
            CrashServer(at_ms=2.0, server_index=3),
            Recover(at_ms=3.0, all_servers=True),
            PartitionGroups(at_ms=4.0, group_count=3, isolate_leader=True),
            Heal(at_ms=5.0),
            SwapFault(at_ms=6.0, fault=PacketLossSpec(0.1)),
        )
        assert pickle.loads(pickle.dumps(events)) == events


class TestChaosPlan:
    def test_requires_a_name_and_positive_horizon(self):
        with pytest.raises(ConfigurationError, match="name"):
            ChaosPlan(name="", horizon_ms=1_000.0)
        with pytest.raises(ConfigurationError, match="horizon_ms"):
            ChaosPlan(name="x", horizon_ms=0.0)

    def test_rejects_events_beyond_the_horizon(self):
        with pytest.raises(ConfigurationError, match="beyond"):
            ChaosPlan(
                name="x",
                horizon_ms=1_000.0,
                events=(CrashLeader(at_ms=2_000.0),),
            )

    def test_rejects_unsorted_events(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            ChaosPlan(
                name="x",
                horizon_ms=1_000.0,
                events=(CrashLeader(at_ms=500.0), Heal(at_ms=100.0)),
            )

    def test_rejects_non_event_members(self):
        with pytest.raises(ConfigurationError, match="ChaosEvent"):
            ChaosPlan(name="x", horizon_ms=1_000.0, events=("crash",))  # type: ignore[arg-type]

    def test_describe_summarises_the_inventory(self):
        plan = build_plan("repeated-leader-kill", horizon_ms=40_000.0, seed=1)
        text = plan.describe()
        assert "repeated-leader-kill" in text
        assert "CrashLeader" in text


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [repeated_leader_kill, rolling_restart, partition_flap, chaos_storm],
    )
    def test_same_seed_reproduces_the_same_plan(self, generator):
        assert generator(horizon_ms=60_000.0, seed=5) == generator(
            horizon_ms=60_000.0, seed=5
        )

    @pytest.mark.parametrize(
        "generator", [repeated_leader_kill, rolling_restart, partition_flap]
    )
    def test_different_seeds_jitter_the_timeline(self, generator):
        one = generator(horizon_ms=60_000.0, seed=1)
        two = generator(horizon_ms=60_000.0, seed=2)
        assert [e.at_ms for e in one.events] != [e.at_ms for e in two.events]

    @pytest.mark.parametrize(
        "generator",
        [repeated_leader_kill, rolling_restart, partition_flap, chaos_storm],
    )
    def test_events_stay_sorted_and_inside_the_horizon(self, generator):
        plan = generator(horizon_ms=90_000.0, seed=3)
        times = [event.at_ms for event in plan.events]
        assert times == sorted(times)
        assert all(0.0 <= t <= plan.horizon_ms for t in times)
        assert plan.events, "a 90 s horizon must contain at least one cycle"

    def test_every_crash_has_a_recovery_partner(self):
        plan = repeated_leader_kill(horizon_ms=120_000.0, seed=0)
        crashes = sum(isinstance(e, CrashLeader) for e in plan.events)
        recoveries = sum(isinstance(e, Recover) for e in plan.events)
        assert crashes == recoveries > 0

    def test_rolling_restart_cycles_the_membership_indexes(self):
        plan = rolling_restart(horizon_ms=120_000.0, seed=0)
        indexes = [
            event.server_index
            for event in plan.events
            if isinstance(event, CrashServer)
        ]
        assert indexes == list(range(len(indexes)))

    def test_chaos_storm_composes_all_event_kinds(self):
        plan = chaos_storm(horizon_ms=120_000.0, seed=0)
        kinds = {type(event) for event in plan.events}
        assert {
            CrashLeader,
            CrashServer,
            Recover,
            PartitionGroups,
            Heal,
            SwapFault,
        } <= kinds
        swaps = [e for e in plan.events if isinstance(e, SwapFault)]
        # The degraded phase ends by restoring the scenario's baseline fault
        # (fault=None), not by forcing a healthy network on top of whatever
        # catalog condition the plan is layered over.
        assert any(e.fault is None for e in swaps)


class TestCatalog:
    def test_catalog_names_every_required_plan(self):
        assert plan_names() == (
            "repeated-leader-kill",
            "rolling-restart",
            "partition-flap",
            "chaos-storm",
        )
        for name, entry in CHAOS_CATALOG.items():
            assert entry.name == name
            assert entry.description

    def test_unknown_plan_fails_with_the_available_names(self):
        with pytest.raises(ConfigurationError, match="repeated-leader-kill"):
            get_plan_entry("no-such-plan")

    def test_build_plan_is_deterministic_and_picklable(self):
        plan = build_plan("chaos-storm", horizon_ms=60_000.0, seed=9)
        assert plan == build_plan("chaos-storm", horizon_ms=60_000.0, seed=9)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert isinstance(clone, ChaosPlan)
        assert all(isinstance(event, ChaosEvent) for event in clone.events)

"""Unit tests for the Z-Raft baseline (static priorities, no PPF)."""

from helpers import FakeEnvironment, fast_protocol_config, small_cluster

from repro.escape.configuration import Configuration
from repro.escape.messages import (
    EscapeAppendEntriesRequest,
    EscapeAppendEntriesResponse,
    EscapeRequestVoteRequest,
)
from repro.raft.messages import AppendEntriesRequest, AppendEntriesResponse, RequestVoteResponse
from repro.raft.state import Role
from repro.zraft.node import ZRaftNode


def make_node(node_id=3, size=5):
    env = FakeEnvironment(node_id=node_id)
    node = ZRaftNode(
        node_id=node_id,
        cluster=small_cluster(size),
        env=env,
        protocol_config=fast_protocol_config(),
    )
    return node, env


def make_leader(node_id=5, size=5):
    node, env = make_node(node_id=node_id, size=size)
    node.start()
    env.fire_next_timer(f"S{node_id}:election-timeout")
    for peer in node.peers:
        node.on_message(
            peer, RequestVoteResponse(term=node.current_term, voter_id=peer, vote_granted=True)
        )
        if node.role is Role.LEADER:
            break
    assert node.role is Role.LEADER
    env.clear_sent()
    return node, env


class TestStaticPriorities:
    def test_priority_is_the_server_id_and_never_changes(self):
        node, env = make_node(node_id=3)
        node.start()
        before = node.configuration
        node.on_message(
            1,
            EscapeAppendEntriesRequest(
                term=1,
                leader_id=1,
                new_config=Configuration(priority=5, timer_period_ms=50.0, conf_clock=9),
            ),
        )
        assert node.configuration == before
        assert node.configuration_updates == 0

    def test_term_growth_still_uses_the_static_priority(self):
        node, env = make_node(node_id=3)
        node.start()
        env.fire_next_timer("S3:election-timeout")
        assert node.current_term == 3

    def test_election_timeout_comes_from_static_configuration(self):
        node, env = make_node(node_id=2, size=5)
        node.start()
        # fast config: base 100ms, k 20ms -> S2 in a 5-cluster waits 160ms.
        assert env.pending_timers()[0].delay_ms == 160.0


class TestNoPpf:
    def test_leader_has_no_patrol_and_sends_plain_heartbeats(self):
        node, env = make_leader()
        assert node.patrol is None
        env.fire_next_timer("S5:heartbeat")
        heartbeats = env.sent_payloads(AppendEntriesRequest)
        assert heartbeats
        assert not any(isinstance(hb, EscapeAppendEntriesRequest) for hb in heartbeats)

    def test_replies_are_plain_raft_replies(self):
        node, env = make_node(node_id=2)
        node.start()
        node.on_message(1, AppendEntriesRequest(term=1, leader_id=1))
        reply = env.sent_to(1)[0]
        assert isinstance(reply, AppendEntriesResponse)
        assert not isinstance(reply, EscapeAppendEntriesResponse)

    def test_votes_are_not_gated_by_configuration_clock(self):
        node, env = make_node(node_id=2)
        node.start()
        node.on_message(
            3,
            EscapeRequestVoteRequest(term=5, candidate_id=3, conf_clock=0, priority=3),
        )
        assert env.sent_to(3)[0].vote_granted

    def test_protocol_name(self):
        node, _ = make_node()
        assert node.protocol_name == "zraft"

"""Round-trip tests for the availability CSV/JSON export helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.export import (
    AVAILABILITY_CSV_FIELDS,
    availability_to_row,
    read_availability_csv,
    read_availability_json,
    write_availability_csv,
    write_availability_json,
)
from repro.metrics.records import AvailabilityMeasurement, AvailabilitySet


def _measurement(seed=1, protocol="raft", outages=2):
    intervals = tuple(
        (10_000.0 * (i + 1), 10_000.0 * (i + 1) + 1_500.0) for i in range(outages)
    )
    leaderless = sum(end - start for start, end in intervals)
    return AvailabilityMeasurement(
        protocol=protocol,
        cluster_size=5,
        seed=seed,
        plan="repeated-leader-kill",
        start_ms=5_000.0,
        end_ms=65_000.0,
        available_ms=60_000.0 - leaderless,
        leaderless_ms=leaderless,
        unavailability=leaderless / 60_000.0,
        disruption_count=outages,
        skipped_disruptions=0,
        outage_count=outages,
        recovery_ms=tuple(end - start for start, end in intervals),
        proposals_proposed=200,
        proposals_dropped=12,
        leaderless_intervals=intervals,
        extra={"committed_entries": 180},
    )


def _sets():
    return {
        "raft": AvailabilitySet([_measurement(1), _measurement(2)], label="raft"),
        "escape": AvailabilitySet(
            [_measurement(1, protocol="escape", outages=1)], label="escape"
        ),
    }


class TestAvailabilityCsv:
    def test_round_trip_preserves_every_field(self, tmp_path):
        path = write_availability_csv(tmp_path / "avail.csv", _sets())
        rows = read_availability_csv(path)
        assert len(rows) == 3
        assert set(rows[0]) == set(AVAILABILITY_CSV_FIELDS)
        first = rows[0]
        original = availability_to_row(_measurement(1), label="raft")
        for fieldname in AVAILABILITY_CSV_FIELDS:
            assert first[fieldname] == str(original[fieldname])
        # Numeric fields survive the text round-trip exactly.
        assert float(first["unavailability"]) == pytest.approx(
            _measurement(1).unavailability, abs=1e-6
        )
        assert int(first["outage_count"]) == 2

    def test_missing_file_fails_with_a_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such results file"):
            read_availability_csv(tmp_path / "absent.csv")

    def test_none_recovery_serialises_for_outage_free_runs(self, tmp_path):
        clean = _measurement(3, outages=0)
        assert clean.mean_recovery_ms is None
        path = write_availability_csv(tmp_path / "clean.csv", {"raft": [clean]})
        (row,) = read_availability_csv(path)
        assert row["mean_recovery_ms"] == ""
        assert row["max_recovery_ms"] == ""


class TestAvailabilityJson:
    def test_round_trip_reconstructs_the_measurements_exactly(self, tmp_path):
        sets = _sets()
        path = write_availability_json(
            tmp_path / "avail.json", sets, metadata={"experiment": "avail"}
        )
        restored = read_availability_json(path)
        assert set(restored) == {"raft", "escape"}
        for label, availability_set in sets.items():
            assert restored[label].label == label
            assert restored[label].measurements == availability_set.measurements

    def test_aggregates_survive_the_round_trip(self, tmp_path):
        sets = _sets()
        path = write_availability_json(tmp_path / "avail.json", sets)
        restored = read_availability_json(path)
        assert restored["raft"].mean_unavailability() == pytest.approx(
            sets["raft"].mean_unavailability()
        )
        assert restored["raft"].pooled_recovery_ms() == sets[
            "raft"
        ].pooled_recovery_ms()
        assert restored["escape"].total_proposed() == 200

    def test_missing_file_fails_with_a_clear_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such results file"):
            read_availability_json(tmp_path / "absent.json")


class TestAvailabilitySetAggregates:
    def test_empty_set_refuses_aggregates(self):
        empty = AvailabilitySet(label="empty")
        with pytest.raises(Exception, match="no runs"):
            empty.mean_unavailability()
        assert empty.mean_recovery_ms() is None
        assert empty.total_proposed() == 0

    def test_means_are_per_run_and_recovery_is_pooled(self):
        availability_set = AvailabilitySet(
            [_measurement(1, outages=2), _measurement(2, outages=2)]
        )
        assert availability_set.mean_outages() == 2.0
        assert len(availability_set.pooled_recovery_ms()) == 4
        assert availability_set.mean_recovery_ms() == pytest.approx(1_500.0)

"""Cross-registry spec conformance: pickle, hash, ``dataclasses.replace``.

Every value registered with any of the five dispatch registries (protocols,
experiments, network conditions, chaos plans, simulation engines) must cross
the parallel sweep engine's multiprocessing boundary intact.  This suite states that contract
directly -- one parametrized case per registered spec -- so registering a new
spec anywhere subjects it to the same checks automatically.  The lint S1
rule enforces the same properties statically; this is the runtime half.
"""

import dataclasses
import pickle

import pytest

from repro.chaos import plans as chaos_plans
from repro.cluster import catalog as net_catalog
from repro.experiments import registry as experiment_registry
from repro.experiments.spec import ExperimentSpec
from repro.protocols import registry as protocol_registry
from repro.sim import engines as engine_registry


def _all_registered():
    import repro.experiments  # noqa: F401 - importing registers the specs

    cases = []
    for registry_name, pairs in (
        ("protocols", protocol_registry.registered_specs()),
        ("experiments", experiment_registry.registered_specs()),
        ("net-conditions", net_catalog.registered_specs()),
        ("chaos-plans", chaos_plans.registered_specs()),
        ("engines", engine_registry.registered_specs()),
    ):
        cases.extend(
            pytest.param(spec, id=f"{registry_name}:{name}")
            for name, spec in pairs
        )
    return cases


ALL_SPECS = _all_registered()


@pytest.mark.parametrize("spec", ALL_SPECS)
class TestSpecConformance:
    def test_is_frozen_dataclass(self, spec):
        assert dataclasses.is_dataclass(spec)
        assert type(spec).__dataclass_params__.frozen
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "mutated"

    def test_hashes_and_equality_are_stable(self, spec):
        assert hash(spec) == hash(spec)
        assert spec in {spec}

    def test_pickles_bit_for_bit(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_replace_round_trips(self, spec):
        clone = dataclasses.replace(spec)
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_replace_with_change_diverges_and_restores(self, spec):
        renamed = dataclasses.replace(spec, name=spec.name + "-x")
        assert renamed != spec
        restored = dataclasses.replace(renamed, name=spec.name)
        assert restored == spec


class TestExperimentSpecMappings:
    """The FrozenDict fields behind S1's hashability requirement."""

    @pytest.mark.parametrize(
        "name", [spec.name for spec in experiment_registry.specs()]
    )
    def test_parameter_mappings_are_immutable(self, name):
        spec = experiment_registry.get(name)
        for field in ("params", "quick_params", "capability_overrides"):
            mapping = getattr(spec, field)
            assert hash(mapping) == hash(mapping)
            with pytest.raises(TypeError):
                mapping["injected"] = 1

    def test_resolved_params_still_returns_a_plain_dict(self):
        spec = experiment_registry.get("fig9")
        resolved = spec.resolved_params()
        assert isinstance(resolved, dict)
        assert resolved == dict(spec.params)

    def test_equal_specs_hash_equal_across_field_order(self):
        first = ExperimentSpec(
            name="fx-order",
            title="fixture",
            run=_fixture_run,
            reporter=_fixture_report,
            params={"a": 1, "b": 2},
        )
        second = ExperimentSpec(
            name="fx-order",
            title="fixture",
            run=_fixture_run,
            reporter=_fixture_report,
            params={"b": 2, "a": 1},
        )
        assert first == second
        assert hash(first) == hash(second)


def _fixture_run(*, runs, seed, workers=None, progress=None):
    return None


def _fixture_report(result) -> str:
    return "fixture"

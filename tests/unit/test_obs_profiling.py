"""Unit tests for the wall-clock phase profiler."""

import pytest

from repro.obs.profiling import Profiler


class SteppingClock:
    """Returns increasing timestamps from a scripted step sequence."""

    def __init__(self, *steps):
        self.now = 0.0
        self._steps = list(steps)

    def tick(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestProfiler:
    def test_phase_records_elapsed_time(self):
        clock = SteppingClock()
        profiler = Profiler(clock=clock)
        with profiler.phase("sweep"):
            clock.tick(2.5)
        assert profiler.elapsed("sweep") == pytest.approx(2.5)

    def test_reentering_a_phase_accumulates(self):
        clock = SteppingClock()
        profiler = Profiler(clock=clock)
        for _ in range(3):
            with profiler.phase("export"):
                clock.tick(1.0)
        assert profiler.elapsed("export") == pytest.approx(3.0)

    def test_elapsed_default_for_unknown_phase(self):
        profiler = Profiler(clock=SteppingClock())
        assert profiler.elapsed("never") == 0.0
        assert profiler.elapsed("never", default=-1.0) == -1.0

    def test_total_and_snapshot_preserve_first_seen_order(self):
        clock = SteppingClock()
        profiler = Profiler(clock=clock)
        with profiler.phase("build"):
            clock.tick(1.0)
        with profiler.phase("sweep"):
            clock.tick(4.0)
        with profiler.phase("report"):
            clock.tick(0.5)
        assert list(profiler.snapshot()) == ["build", "sweep", "report"]
        assert profiler.total == pytest.approx(5.5)

    def test_snapshot_is_a_copy(self):
        clock = SteppingClock()
        profiler = Profiler(clock=clock)
        with profiler.phase("build"):
            clock.tick(1.0)
        snapshot = profiler.snapshot()
        snapshot["build"] = 99.0
        assert profiler.elapsed("build") == pytest.approx(1.0)

    def test_phase_records_even_when_the_block_raises(self):
        clock = SteppingClock()
        profiler = Profiler(clock=clock)
        with pytest.raises(RuntimeError):
            with profiler.phase("sweep"):
                clock.tick(2.0)
                raise RuntimeError("boom")
        assert profiler.elapsed("sweep") == pytest.approx(2.0)

    def test_default_clock_measures_real_time(self):
        profiler = Profiler()
        with profiler.phase("noop"):
            pass
        assert profiler.elapsed("noop") >= 0.0

"""Unit tests for the streaming sweep path and its checkpoint/resume.

Three contracts are pinned here on real (small) election scenarios:

* **path equality** -- the streaming sweep's per-label aggregates are
  observably equal to aggregating the raw path's measurement sets, and in
  the exact regime their reported statistics are bit-identical;
* **schedule invariance** -- the streaming result's serialised state is
  byte-identical across worker counts, because the chunk partition is
  worker-independent and partials merge in chunk-index order;
* **resume invariance** -- a sweep killed after any prefix of chunks (here:
  a checkpoint file truncated to a prefix, including a torn trailing line)
  resumes to the byte-identical final state, even under a different worker
  count, while an incompatible checkpoint is discarded rather than mixed in.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import SweepError
from repro.experiments.checkpoint import SweepCheckpoint, checkpoint_fingerprint
from repro.experiments.runner import (
    MAX_CHUNK_ITEMS,
    build_chunks,
    build_work_items,
    run_sweep,
    streaming_chunk_size,
)
from repro.metrics.records import MeasurementSet
from repro.metrics.streaming import ElectionAggregate

SCENARIOS = {
    "escape-small": ElectionScenario(protocol="escape", cluster_size=3),
    "raft-small": ElectionScenario(protocol="raft", cluster_size=3),
}


def _state_bytes(results: dict[str, ElectionAggregate]) -> str:
    """Canonical byte-level serialisation of a streaming sweep's results."""
    return json.dumps(
        {label: results[label].to_state() for label in sorted(results)},
        sort_keys=True,
    )


class TestWorkPartition:
    def test_items_are_interleaved_across_labels(self):
        items = build_work_items(SCENARIOS, runs=3, seed=0)
        # Run 0 of every label first, then run 1, ... -- so a size-mixed
        # sweep chunks into balanced-cost chunks instead of label-major runs.
        assert [(item.label, item.index) for item in items] == [
            ("escape-small", 0),
            ("raft-small", 0),
            ("escape-small", 1),
            ("raft-small", 1),
            ("escape-small", 2),
            ("raft-small", 2),
        ]

    def test_chunks_partition_the_item_list(self):
        items = build_work_items(SCENARIOS, runs=5, seed=0)
        chunks = build_chunks(items, chunk_size=3)
        assert [chunk.chunk_id for chunk in chunks] == [0, 1, 2, 3]
        reassembled = [item for chunk in chunks for item in chunk.items]
        assert reassembled == items
        with pytest.raises(SweepError):
            build_chunks(items, chunk_size=0)

    def test_streaming_chunk_size_is_worker_free_and_capped(self):
        # The signature itself is part of the contract: no worker count in
        # sight, so the partition (and the merge tree) can never depend on it.
        assert streaming_chunk_size(10) == 1
        assert streaming_chunk_size(320) == 20
        assert streaming_chunk_size(10**6) == MAX_CHUNK_ITEMS


class TestStreamingPath:
    def test_streaming_equals_aggregated_raw_path(self):
        raw: dict[str, MeasurementSet] = run_sweep(
            SCENARIOS, runs=4, seed=7, workers=1
        )
        streamed = run_sweep(SCENARIOS, runs=4, seed=7, workers=1, streaming=True)
        assert list(streamed) == list(raw)
        for label in raw:
            expected = ElectionAggregate.from_measurements(
                raw[label].measurements, label
            )
            assert streamed[label] == expected
            # Bit-identical reported statistics (exact regime).
            assert streamed[label].total_summary() == expected.total_summary()
            assert streamed[label].total_cdf() == expected.total_cdf()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_streaming_state_is_byte_identical_across_worker_counts(self, workers):
        baseline = run_sweep(SCENARIOS, runs=4, seed=3, workers=1, streaming=True)
        fanned = run_sweep(
            SCENARIOS, runs=4, seed=3, workers=workers, streaming=True
        )
        assert _state_bytes(fanned) == _state_bytes(baseline)

    def test_streaming_progress_is_monotonic_and_complete(self):
        calls: list[tuple[str, int, int]] = []
        run_sweep(
            SCENARIOS,
            runs=4,
            seed=0,
            workers=1,
            streaming=True,
            progress=lambda label, done, total: calls.append((label, done, total)),
        )
        for label in SCENARIOS:
            counts = [done for call_label, done, _ in calls if call_label == label]
            assert counts == sorted(counts)
            assert counts[-1] == 4
            assert all(total == 4 for call_label, _, total in calls)

    def test_streaming_failures_name_the_chunk(self):
        class _Exploding:
            def run(self, seed):
                raise ValueError("boom")

        with pytest.raises(SweepError, match="streaming chunk 0.*boom"):
            run_sweep({"bad": _Exploding()}, runs=2, seed=0, workers=1, streaming=True)

    def test_checkpoint_requires_streaming(self, tmp_path):
        with pytest.raises(SweepError, match="streaming"):
            run_sweep(SCENARIOS, runs=2, seed=0, workers=1, checkpoint=tmp_path)


class TestCheckpointFile:
    def test_fingerprint_covers_every_identity_component(self):
        base = checkpoint_fingerprint(SCENARIOS, 4, 0, ElectionAggregate)
        assert base == checkpoint_fingerprint(SCENARIOS, 4, 0, ElectionAggregate)
        assert base != checkpoint_fingerprint(SCENARIOS, 5, 0, ElectionAggregate)
        assert base != checkpoint_fingerprint(SCENARIOS, 4, 1, ElectionAggregate)
        assert base != checkpoint_fingerprint(
            dict(list(SCENARIOS.items())[:1]), 4, 0, ElectionAggregate
        )
        assert base != checkpoint_fingerprint(SCENARIOS, 4, 0, MeasurementSet)

    def _open(self, directory, *, fingerprint="f" * 64, chunk_size=2):
        return SweepCheckpoint.open(
            directory,
            fingerprint=fingerprint,
            labels=list(SCENARIOS),
            runs=4,
            seed=0,
            chunk_size=chunk_size,
            loader=ElectionAggregate.from_state,
        )

    def test_resume_restores_recorded_chunks_and_chunk_size(self, tmp_path):
        with self._open(tmp_path) as checkpoint:
            assert checkpoint.completed == {}
            partial = ElectionAggregate("escape-small")
            checkpoint.record(0, {"escape-small": partial})
        # A different requested chunk size loses to the recorded one, so a
        # resume under another --workers count cannot shift the partition.
        with self._open(tmp_path, chunk_size=9) as resumed:
            assert resumed.chunk_size == 2
            assert set(resumed.completed) == {0}
            assert resumed.completed[0]["escape-small"] == partial

    def test_torn_trailing_line_is_trimmed(self, tmp_path):
        with self._open(tmp_path) as checkpoint:
            checkpoint.record(0, {"escape-small": ElectionAggregate("escape-small")})
            path = checkpoint.path
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"chunk": 1, "partials": {"esc')  # kill mid-append
        with self._open(tmp_path) as resumed:
            assert set(resumed.completed) == {0}
        assert path.read_text().endswith("\n")  # clean line boundary again

    def test_mismatched_checkpoint_is_discarded(self, tmp_path):
        with self._open(tmp_path, fingerprint="a" * 64) as checkpoint:
            checkpoint.record(0, {"escape-small": ElectionAggregate("escape-small")})
        # Same directory, same file name prefix length -- different sweep.
        with SweepCheckpoint.open(
            tmp_path,
            fingerprint="a" * 64,
            labels=["other-label"],
            runs=4,
            seed=0,
            chunk_size=2,
            loader=ElectionAggregate.from_state,
        ) as fresh:
            assert fresh.completed == {}

    def test_aggregates_without_to_state_are_rejected(self, tmp_path):
        with self._open(tmp_path) as checkpoint:
            with pytest.raises(SweepError, match="to_state"):
                checkpoint.record(0, {"escape-small": object()})


class TestKillAndResume:
    def _checkpoint_file(self, directory):
        files = list(directory.glob("sweep-*.jsonl"))
        assert len(files) == 1
        return files[0]

    @pytest.mark.parametrize("keep_chunks", [0, 1, 3])
    @pytest.mark.parametrize("resume_workers", [1, 2])
    def test_resume_after_kill_is_byte_identical(
        self, tmp_path, keep_chunks, resume_workers
    ):
        baseline = run_sweep(SCENARIOS, runs=8, seed=5, workers=1, streaming=True)

        first_dir = tmp_path / "first"
        run_sweep(
            SCENARIOS, runs=8, seed=5, workers=1, streaming=True,
            checkpoint=first_dir,
        )
        path = self._checkpoint_file(first_dir)
        lines = path.read_text().splitlines(keepends=True)
        assert len(lines) > keep_chunks + 1  # header + enough chunks recorded

        # Simulate a kill: keep the header + a prefix of chunk lines, plus a
        # torn half-line from the append that was in flight.
        killed = lines[: 1 + keep_chunks] + ['{"chunk": 99, "par']
        path.write_text("".join(killed))

        resumed = run_sweep(
            SCENARIOS, runs=8, seed=5, workers=resume_workers, streaming=True,
            checkpoint=first_dir,
        )
        assert _state_bytes(resumed) == _state_bytes(baseline)

    def test_completed_checkpoint_resumes_without_rerunning_any_chunk(
        self, tmp_path, monkeypatch
    ):
        run_sweep(
            SCENARIOS, runs=8, seed=5, workers=1, streaming=True,
            checkpoint=tmp_path,
        )
        baseline = self._checkpoint_file(tmp_path).read_text()

        # Every chunk is already on disk, so no scenario may run again.
        def _refuse(self, seed):
            raise AssertionError("resume re-ran an already-checkpointed episode")

        monkeypatch.setattr(ElectionScenario, "run", _refuse)
        resumed = run_sweep(
            SCENARIOS, runs=8, seed=5, workers=1, streaming=True,
            checkpoint=tmp_path,
        )
        assert set(resumed) == set(SCENARIOS)
        assert self._checkpoint_file(tmp_path).read_text() == baseline

"""Unit tests for the sweep progress reporter (heartbeat + ticker)."""

import io
import json

from repro.obs.progress import HEARTBEAT_SCHEMA, ProgressReporter


class FakeClock:
    """A manually advanced monotonic clock for deterministic rate tests."""

    def __init__(self):
        self.now = 100.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestProgressReporter:
    def test_status_tracks_totals_rate_and_eta(self):
        clock = FakeClock()
        reporter = ProgressReporter(clock=clock)
        reporter.sweep_begin(["a", "b"], runs=10, workers=4)
        clock.advance(5.0)
        reporter("a", 5, 10)
        reporter("b", 5, 10)
        status = reporter.status()
        assert status["schema"] == HEARTBEAT_SCHEMA
        assert status["labels"] == {
            "a": {"completed": 5, "total": 10},
            "b": {"completed": 5, "total": 10},
        }
        assert status["completed"] == 10 and status["total"] == 20
        assert status["episodes_per_s"] == 2.0
        assert status["eta_s"] == 5.0
        assert status["workers"] == 4
        assert status["finished"] is False

    def test_sweep_begin_announces_the_plan_before_any_callback(self):
        reporter = ProgressReporter(clock=FakeClock())
        reporter.sweep_begin(["a", "b", "c"], runs=7, workers=1)
        status = reporter.status()
        assert status["total"] == 21 and status["completed"] == 0
        assert status["eta_s"] is None  # no rate yet, never divide by zero

    def test_resumed_episodes_do_not_inflate_the_rate(self):
        clock = FakeClock()
        reporter = ProgressReporter(clock=clock)
        reporter.sweep_begin(["a"], runs=100, workers=2)
        reporter.mark_resumed("a", 90)
        clock.advance(5.0)
        reporter("a", 95, 100)
        status = reporter.status()
        assert status["resumed"] == 90
        # Only the 5 fresh episodes count toward the rate (1/s, not 19/s).
        assert status["episodes_per_s"] == 1.0
        assert status["eta_s"] == 5.0

    def test_heartbeat_file_is_written_and_finalised(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "hb.json"
        reporter = ProgressReporter(heartbeat_path=path, clock=clock)
        reporter.sweep_begin(["a"], runs=2, workers=1)
        clock.advance(1.0)
        reporter("a", 1, 2)
        payload = json.loads(path.read_text())
        assert payload["schema"] == HEARTBEAT_SCHEMA
        assert payload["completed"] == 1 and payload["finished"] is False
        assert not path.with_suffix(".json.tmp").exists()  # atomic rename
        reporter("a", 2, 2)
        reporter.finish()
        final = json.loads(path.read_text())
        assert final["completed"] == 2 and final["finished"] is True

    def test_emission_is_throttled_to_the_interval(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "hb.json"
        reporter = ProgressReporter(
            heartbeat_path=path, interval_s=10.0, clock=clock
        )
        reporter.sweep_begin(["a"], runs=3, workers=1)
        reporter("a", 1, 3)  # first call always emits
        first = path.read_text()
        clock.advance(1.0)
        reporter("a", 2, 3)  # within the interval: no rewrite
        assert path.read_text() == first
        clock.advance(10.0)
        reporter("a", 3, 3)  # past the interval: rewritten
        assert json.loads(path.read_text())["completed"] == 3

    def test_ticker_overwrites_one_line_and_ends_with_newline(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(ticker=True, clock=clock, stream=stream)
        reporter.sweep_begin(["a"], runs=2, workers=1)
        clock.advance(1.0)
        reporter("a", 1, 2)
        assert stream.getvalue().startswith("\r")
        assert "1/2 episodes" in stream.getvalue()
        reporter.finish()
        reporter.finish()  # idempotent
        assert stream.getvalue().endswith("\n")
        assert stream.getvalue().count("\n") == 1

    def test_finish_without_any_progress_is_safe(self, tmp_path):
        path = tmp_path / "hb.json"
        reporter = ProgressReporter(heartbeat_path=path, clock=FakeClock())
        reporter.finish()
        payload = json.loads(path.read_text())
        assert payload["finished"] is True and payload["total"] == 0

    def test_utilization_tracks_the_rate_against_its_peak(self):
        clock = FakeClock()
        reporter = ProgressReporter(clock=clock)
        reporter.sweep_begin(["a"], runs=100, workers=4)
        clock.advance(1.0)
        reporter("a", 10, 100)
        assert reporter.status()["utilization"] == 1.0  # at peak
        clock.advance(9.0)
        status = reporter.status()  # same work over 10x the time: rate sags
        assert 0.0 < status["utilization"] < 1.0

"""Unit tests for the declarative latency/fault specs.

Every spec variant must resolve to the matching :mod:`repro.net` model with
its parameters carried across, validate its inputs at construction, and
pickle round-trip unchanged -- the properties the scenario layer and the
parallel sweep engine rely on.
"""

import pickle

import pytest

from repro.common.errors import ConfigurationError
from repro.net.faults import (
    BroadcastOmissionFault,
    CompositeFault,
    LinkFault,
    MessageDuplicationFault,
    NoFault,
    PacketLossFault,
)
from repro.net.latency import (
    ConstantLatency,
    GeoGroupLatency,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.specs import (
    BroadcastOmissionSpec,
    CompositeFaultSpec,
    ConstantLatencySpec,
    DuplicationSpec,
    GeoLatencySpec,
    LinkFaultSpec,
    LogNormalLatencySpec,
    NoFaultSpec,
    PacketLossSpec,
    UniformLatencySpec,
    assign_regions,
)

SERVERS = (1, 2, 3, 4, 5)

ALL_SPECS = [
    UniformLatencySpec(50.0, 80.0),
    ConstantLatencySpec(25.0),
    LogNormalLatencySpec(median_ms=120.0, sigma=0.6, max_ms=2_000.0),
    GeoLatencySpec(region_count=2, intra_ms=(1.0, 5.0), inter_ms=(90.0, 140.0)),
    NoFaultSpec(),
    BroadcastOmissionSpec(0.2, affect_unicast=True),
    PacketLossSpec(0.1),
    LinkFaultSpec(broken_links=frozenset({(1, 2)}), symmetric=False),
    DuplicationSpec(0.3),
    CompositeFaultSpec(parts=(BroadcastOmissionSpec(0.2), DuplicationSpec(0.1))),
]


class TestLatencySpecResolution:
    def test_uniform_resolves_with_range(self):
        model = UniformLatencySpec(50.0, 80.0).resolve(SERVERS)
        assert isinstance(model, UniformLatency)
        assert (model.low_ms, model.high_ms) == (50.0, 80.0)

    def test_constant_resolves_with_value(self):
        model = ConstantLatencySpec(25.0).resolve(SERVERS)
        assert isinstance(model, ConstantLatency)
        assert model.latency_ms == 25.0

    def test_lognormal_resolves_with_parameters(self):
        model = LogNormalLatencySpec(120.0, 0.6, 2_000.0).resolve(SERVERS)
        assert isinstance(model, LogNormalLatency)
        assert (model.median_ms, model.sigma, model.max_ms) == (120.0, 0.6, 2_000.0)

    def test_geo_resolves_with_balanced_regions(self):
        spec = GeoLatencySpec(
            region_count=2, intra_ms=(1.0, 5.0), inter_ms=(90.0, 140.0)
        )
        model = spec.resolve(SERVERS)
        assert isinstance(model, GeoGroupLatency)
        assert model.intra_ms == (1.0, 5.0)
        assert model.inter_ms == (90.0, 140.0)
        # 5 servers over 2 regions: contiguous 3/2 split.
        assert model.region_of(1) == model.region_of(3)
        assert model.region_of(4) == model.region_of(5)
        assert model.region_of(3) != model.region_of(4)

    def test_geo_spec_is_cluster_size_independent(self):
        spec = GeoLatencySpec(region_count=3)
        small = spec.resolve((1, 2, 3))
        large = spec.resolve(tuple(range(1, 31)))
        assert len(set(small.regions.values())) == 3
        assert len(set(large.regions.values())) == 3

    def test_validation_mirrors_the_models(self):
        with pytest.raises(ConfigurationError):
            UniformLatencySpec(200.0, 100.0)
        with pytest.raises(ConfigurationError):
            ConstantLatencySpec(-1.0)
        with pytest.raises(ConfigurationError):
            LogNormalLatencySpec(median_ms=0.0)
        with pytest.raises(ConfigurationError):
            GeoLatencySpec(region_count=0)
        with pytest.raises(ConfigurationError):
            GeoLatencySpec(intra_ms=(-10.0, -5.0))
        with pytest.raises(ConfigurationError):
            GeoLatencySpec(inter_ms=(-1.0, 200.0))

    def test_geo_rejects_more_regions_than_servers(self):
        with pytest.raises(ConfigurationError):
            GeoLatencySpec(region_count=4).resolve((1, 2, 3))


class TestAssignRegions:
    def test_contiguous_balanced_blocks(self):
        regions = assign_regions((1, 2, 3, 4, 5, 6, 7), 3)
        blocks = {}
        for server, region in regions.items():
            blocks.setdefault(region, []).append(server)
        assert sorted(len(block) for block in blocks.values()) == [2, 2, 3]
        for block in blocks.values():
            block = sorted(block)
            assert block == list(range(block[0], block[0] + len(block)))

    def test_single_region_covers_everyone(self):
        regions = assign_regions((1, 2, 3), 1)
        assert set(regions.values()) == {"region-0"}


class TestFaultSpecResolution:
    def test_no_fault(self):
        assert isinstance(NoFaultSpec().resolve(SERVERS), NoFault)

    def test_broadcast_omission(self):
        fault = BroadcastOmissionSpec(0.2, affect_unicast=True).resolve(SERVERS)
        assert isinstance(fault, BroadcastOmissionFault)
        assert fault.loss_rate == 0.2
        assert fault.affect_unicast

    def test_packet_loss(self):
        fault = PacketLossSpec(0.1).resolve(SERVERS)
        assert isinstance(fault, PacketLossFault)
        assert fault.loss_rate == 0.1

    def test_link_fault(self):
        spec = LinkFaultSpec(broken_links=frozenset({(1, 2)}), symmetric=False)
        fault = spec.resolve(SERVERS)
        assert isinstance(fault, LinkFault)
        assert fault.broken_links == frozenset({(1, 2)})
        assert not fault.symmetric

    def test_link_fault_rejects_unknown_servers(self):
        spec = LinkFaultSpec(broken_links=frozenset({(1, 99)}))
        with pytest.raises(ConfigurationError):
            spec.resolve(SERVERS)

    def test_duplication(self):
        fault = DuplicationSpec(0.3).resolve(SERVERS)
        assert isinstance(fault, MessageDuplicationFault)
        assert fault.rate == 0.3

    def test_composite_resolves_every_part_in_order(self):
        spec = CompositeFaultSpec(
            parts=(BroadcastOmissionSpec(0.2), DuplicationSpec(0.1))
        )
        fault = spec.resolve(SERVERS)
        assert isinstance(fault, CompositeFault)
        assert isinstance(fault.injectors[0], BroadcastOmissionFault)
        assert isinstance(fault.injectors[1], MessageDuplicationFault)

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            BroadcastOmissionSpec(1.5)
        with pytest.raises(ConfigurationError):
            PacketLossSpec(-0.1)
        with pytest.raises(ConfigurationError):
            DuplicationSpec(2.0)

    def test_composite_rejects_non_spec_parts(self):
        with pytest.raises(ConfigurationError):
            CompositeFaultSpec(parts=(BroadcastOmissionFault(0.2),))


class TestPicklability:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
    def test_every_spec_round_trips(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_resolution_after_round_trip_is_identical(self):
        spec = GeoLatencySpec(region_count=2)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.resolve(SERVERS) == spec.resolve(SERVERS)

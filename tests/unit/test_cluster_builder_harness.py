"""Unit tests for the cluster builder, harness and workload."""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.harness import ElectionHarness
from repro.cluster.observers import ElectionObserver
from repro.cluster.workload import ClientWorkload
from repro.common.errors import ClusterError, ConfigurationError
from repro.escape.node import EscapeNode
from repro.net.latency import ConstantLatency
from repro.raft.node import RaftNode
from repro.raft.state import Role
from repro.zraft.node import ZRaftNode

FAST_LATENCY = ConstantLatency(5.0)


def build(protocol="escape", size=3, seed=0, **kwargs):
    observer = ElectionObserver()
    cluster = build_cluster(
        protocol=protocol,
        size=size,
        seed=seed,
        latency=kwargs.pop("latency", FAST_LATENCY),
        listeners=(observer,),
        **kwargs,
    )
    return cluster, ElectionHarness(cluster, observer)


class TestBuilder:
    def test_builds_requested_protocol_classes(self):
        for protocol, node_class in (
            ("raft", RaftNode),
            ("escape", EscapeNode),
            ("zraft", ZRaftNode),
        ):
            cluster, _ = build(protocol=protocol)
            assert all(type(node) is node_class for node in cluster.nodes.values())
            assert cluster.protocol == protocol

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            build_cluster(protocol="paxos", size=3)

    def test_nodes_are_registered_on_the_network(self):
        cluster, _ = build(size=5)
        assert cluster.network.members == (1, 2, 3, 4, 5)
        assert set(cluster.nodes) == {1, 2, 3, 4, 5}

    def test_node_lookup_and_errors(self):
        cluster, _ = build()
        assert cluster.node(2).node_id == 2
        with pytest.raises(ClusterError):
            cluster.node(99)

    def test_describe_mentions_every_node(self):
        cluster, _ = build(size=3)
        description = cluster.describe()
        assert description.count("S") >= 3


class TestLeadershipLifecycle:
    def test_stabilize_elects_exactly_one_leader(self):
        cluster, harness = build(size=5)
        cluster.start_all()
        leader_id = harness.stabilize()
        assert cluster.leader_id() == leader_id
        roles = harness.current_roles()
        assert sum(1 for role in roles.values() if role is Role.LEADER) == 1

    def test_stabilize_times_out_when_nothing_can_happen(self):
        cluster, harness = build(size=3)
        # Nodes never started: no timers, no leader.
        with pytest.raises(ClusterError):
            harness.stabilize(max_time_ms=500.0)

    def test_crash_and_recover_round_trip(self):
        cluster, harness = build(size=3)
        cluster.start_all()
        leader_id = harness.stabilize()
        cluster.crash(leader_id)
        assert leader_id in cluster.crashed
        assert not cluster.node(leader_id).is_running
        cluster.recover(leader_id)
        assert leader_id not in cluster.crashed
        assert cluster.node(leader_id).is_running

    def test_crash_twice_rejected(self):
        cluster, harness = build(size=3)
        cluster.start_all()
        harness.stabilize()
        victim = cluster.leader_id()
        cluster.crash(victim)
        with pytest.raises(ClusterError):
            cluster.crash(victim)
        with pytest.raises(ClusterError):
            cluster.recover(99)

    def test_crash_leader_without_leader_rejected(self):
        cluster, _ = build(size=3)
        with pytest.raises(ClusterError):
            cluster.crash_leader()

    def test_crash_leader_and_measure_produces_consistent_measurement(self):
        cluster, harness = build(protocol="escape", size=5, seed=3)
        cluster.start_all()
        harness.stabilize()
        harness.run_for(500.0)
        measurement = harness.crash_leader_and_measure(seed=3)
        assert measurement.converged
        assert measurement.winner_id != measurement.extra["crashed_leader"]
        assert measurement.total_ms == pytest.approx(
            measurement.detection_ms + measurement.election_ms
        )
        assert measurement.detection_ms > 0
        assert measurement.protocol == "escape"
        assert measurement.cluster_size == 5

    def test_measurement_reports_non_convergence(self):
        cluster, harness = build(size=3)
        cluster.start_all()
        harness.stabilize()
        # Disconnect everyone else so no quorum can ever form.
        for node_id in list(cluster.nodes):
            if node_id != cluster.leader_id():
                cluster.network.disconnect(node_id)
        measurement = harness.crash_leader_and_measure(max_election_ms=3_000.0)
        assert not measurement.converged
        assert measurement.winner_id is None
        assert measurement.total_ms == 3_000.0


class TestClientPath:
    def test_propose_via_leader_and_replication(self):
        cluster, harness = build(size=3)
        cluster.start_all()
        harness.stabilize()
        index = cluster.propose_via_leader({"op": "put", "key": "x", "value": 1})
        assert index == 1
        harness.run_for(500.0)
        leader = cluster.leader()
        assert leader.commit_index >= 1
        assert harness.committed_prefixes_consistent()

    def test_propose_without_leader_rejected(self):
        cluster, _ = build(size=3)
        with pytest.raises(ClusterError):
            cluster.propose_via_leader("x")

    def test_workload_proposes_periodically(self):
        cluster, harness = build(size=3)
        cluster.start_all()
        harness.stabilize()
        workload = ClientWorkload(cluster, interval_ms=50.0)
        workload.start()
        assert workload.is_active
        harness.run_for(1_000.0)
        workload.stop()
        proposed_after_stop = workload.proposed
        harness.run_for(500.0)
        assert workload.proposed == proposed_after_stop
        assert workload.proposed >= 15

    def test_workload_skips_when_no_leader(self):
        cluster, harness = build(size=3)
        cluster.start_all()
        workload = ClientWorkload(cluster, interval_ms=50.0)
        workload.start()
        # Run for a short window before any leader exists (election timeouts
        # in the default config are 1500+ ms).
        harness.run_for(300.0)
        assert workload.proposed == 0


class TestSafetyHelpers:
    def test_assert_at_most_one_leader_per_term_accepts_clean_history(self):
        cluster, harness = build(size=5)
        cluster.start_all()
        harness.stabilize()
        harness.crash_leader_and_measure()
        harness.assert_at_most_one_leader_per_term()

    def test_assert_detects_fabricated_violation(self):
        cluster, harness = build(size=3)
        harness.observer.on_leader_elected(1, term=5, votes=2, time_ms=10.0)
        harness.observer.on_leader_elected(2, term=5, votes=2, time_ms=20.0)
        with pytest.raises(ClusterError):
            harness.assert_at_most_one_leader_per_term()

"""Unit tests for the reusable election scenarios."""

import pickle

import pytest

from repro.cluster.scenarios import ElectionScenario
from repro.common.config import ScaParameters
from repro.common.errors import ConfigurationError
from repro.common.rng import paired_seeds
from repro.net.faults import BroadcastOmissionFault, MessageDuplicationFault, NoFault
from repro.net.latency import GeoGroupLatency
from repro.net.specs import DuplicationSpec, GeoLatencySpec


class TestScenarioConfiguration:
    def test_protocol_config_reflects_scenario_fields(self):
        scenario = ElectionScenario(
            protocol="raft",
            cluster_size=5,
            raft_timeout_range=(1500.0, 6000.0),
            heartbeat_interval_ms=100.0,
            sca=ScaParameters(1500.0, 250.0),
        )
        config = scenario.protocol_config()
        assert config.raft_timeouts.timeout_max_ms == 6000.0
        assert config.heartbeat_interval_ms == 100.0
        assert config.sca.k_ms == 250.0

    def test_latency_model_uses_range(self):
        scenario = ElectionScenario(protocol="raft", cluster_size=5, latency_range=(10.0, 20.0))
        model = scenario.latency_model()
        assert (model.low_ms, model.high_ms) == (10.0, 20.0)

    def test_fault_injector_depends_on_loss_rate(self):
        assert isinstance(
            ElectionScenario(protocol="raft", cluster_size=5).fault_injector(), NoFault
        )
        fault = ElectionScenario(
            protocol="raft", cluster_size=5, loss_rate=0.3
        ).fault_injector()
        assert isinstance(fault, BroadcastOmissionFault)
        assert fault.loss_rate == 0.3

    def test_with_protocol_keeps_everything_else(self):
        scenario = ElectionScenario(protocol="raft", cluster_size=10, loss_rate=0.2)
        other = scenario.with_protocol("escape")
        assert other.protocol == "escape"
        assert other.cluster_size == 10
        assert other.loss_rate == 0.2

    def test_negative_contention_rejected_at_build_time(self):
        scenario = ElectionScenario(protocol="raft", cluster_size=5, contention_phases=-1)
        with pytest.raises(ConfigurationError):
            scenario.build(seed=0)


class TestScenarioSpecs:
    def test_latency_spec_takes_precedence_over_range(self):
        scenario = ElectionScenario(
            protocol="raft",
            cluster_size=6,
            latency_range=(10.0, 20.0),
            latency=GeoLatencySpec(region_count=2),
        )
        model = scenario.latency_model()
        assert isinstance(model, GeoGroupLatency)
        assert set(model.regions) == set(range(1, 7))

    def test_fault_spec_resolves_against_the_membership(self):
        scenario = ElectionScenario(
            protocol="raft", cluster_size=5, fault=DuplicationSpec(0.4)
        )
        fault = scenario.fault_injector()
        assert isinstance(fault, MessageDuplicationFault)
        assert fault.rate == 0.4

    def test_fault_spec_and_loss_rate_shorthand_conflict(self):
        scenario = ElectionScenario(
            protocol="raft",
            cluster_size=5,
            loss_rate=0.2,
            fault=DuplicationSpec(0.1),
        )
        with pytest.raises(ConfigurationError, match="not both"):
            scenario.fault_injector()

    def test_spec_carrying_scenario_pickles(self):
        scenario = ElectionScenario(
            protocol="escape",
            cluster_size=9,
            latency=GeoLatencySpec(region_count=3),
            fault=DuplicationSpec(0.2),
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.latency_model() == scenario.latency_model()

    def test_spec_scenario_runs_deterministically(self):
        scenario = ElectionScenario(
            protocol="escape",
            cluster_size=6,
            latency=GeoLatencySpec(region_count=2),
        )
        first = scenario.run(seed=11)
        second = scenario.run(seed=11)
        assert first.total_ms == second.total_ms
        assert first.converged

    def test_measurement_extra_records_the_specs(self):
        scenario = ElectionScenario(
            protocol="escape",
            cluster_size=4,
            latency=GeoLatencySpec(region_count=2),
            fault=DuplicationSpec(0.2),
        )
        measurement = scenario.run(seed=5)
        assert measurement.extra["latency_spec"] == repr(
            GeoLatencySpec(region_count=2)
        )
        assert measurement.extra["fault_spec"] == repr(DuplicationSpec(0.2))


class TestScenarioRuns:
    def test_run_is_deterministic_for_a_seed(self):
        scenario = ElectionScenario(protocol="escape", cluster_size=5)
        first = scenario.run(seed=123)
        second = scenario.run(seed=123)
        assert first.total_ms == second.total_ms
        assert first.winner_id == second.winner_id
        assert first.detection_ms == second.detection_ms

    def test_different_seeds_give_different_outcomes(self):
        scenario = ElectionScenario(protocol="raft", cluster_size=5)
        totals = {scenario.run(seed=seed).total_ms for seed in range(4)}
        assert len(totals) > 1

    def test_run_many_produces_requested_number_of_measurements(self):
        scenario = ElectionScenario(protocol="escape", cluster_size=4)
        measurements = scenario.run_many(runs=3, base_seed=9)
        assert len(measurements) == 3
        assert all(m.converged for m in measurements)

    def test_run_many_uses_the_shared_seed_derivation(self):
        """run_many delegates to paired_seeds -- golden values pinned.

        The constants are ``paired_seeds(runs, base_seed, "run")``; a drift
        here would silently unpair ``run_many`` from ``run_sweep`` again
        (the historical inline ``stream("run", index)`` bug).
        """
        scenario = ElectionScenario(protocol="escape", cluster_size=4)
        measurements = scenario.run_many(runs=3, base_seed=9)
        assert [m.seed for m in measurements] == paired_seeds(3, 9, "run")
        assert [m.seed for m in measurements] == [
            3173716481,
            299647418,
            3957931404,
        ]

    def test_run_many_label_matches_a_sweep_of_the_same_label(self):
        scenario = ElectionScenario(protocol="escape", cluster_size=4)
        measurements = scenario.run_many(runs=2, base_seed=42, label="wan")
        assert [m.seed for m in measurements] == paired_seeds(2, 42, "wan")
        assert [m.seed for m in measurements] == [2764160534, 1673579558]

    def test_measurement_extra_records_scenario_parameters(self):
        scenario = ElectionScenario(
            protocol="escape", cluster_size=4, loss_rate=0.2, workload_interval_ms=100.0
        )
        measurement = scenario.run(seed=5)
        assert measurement.extra["loss_rate"] == 0.2
        assert measurement.extra["contention_phases"] == 0
        assert measurement.extra["workload_proposed"] > 0

    def test_contention_scenario_forces_split_votes_in_raft(self):
        scenario = ElectionScenario(protocol="raft", cluster_size=5, contention_phases=2)
        measurements = scenario.run_many(runs=3, base_seed=1)
        assert any(m.split_vote for m in measurements)

    def test_contention_scenario_does_not_split_escape(self):
        scenario = ElectionScenario(protocol="escape", cluster_size=5, contention_phases=2)
        measurements = scenario.run_many(runs=3, base_seed=1)
        assert all(not m.split_vote for m in measurements)
        assert all(m.converged for m in measurements)

    def test_paired_protocol_comparison_uses_same_seed(self):
        raft = ElectionScenario(protocol="raft", cluster_size=5)
        escape = raft.with_protocol("escape")
        assert raft.run(seed=77).crash_time_ms != 0
        assert escape.run(seed=77).converged

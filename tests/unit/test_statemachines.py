"""Unit tests for the replicated state machines."""

import pytest

from repro.common.errors import ProtocolError
from repro.statemachine.kvstore import (
    CompareAndSwapCommand,
    DeleteCommand,
    GetCommand,
    KeyValueStore,
    PutCommand,
    command_from_dict,
)
from repro.statemachine.register import AppendRegister, CounterMachine


class TestKeyValueStore:
    def test_put_returns_previous_value(self):
        store = KeyValueStore()
        assert store.apply(PutCommand("x", 1)) is None
        assert store.apply(PutCommand("x", 2)) == 1
        assert store.get("x") == 2

    def test_get_reads_current_value(self):
        store = KeyValueStore()
        store.apply(PutCommand("k", "v"))
        assert store.apply(GetCommand("k")) == "v"
        assert store.apply(GetCommand("missing")) is None

    def test_delete_reports_existence(self):
        store = KeyValueStore()
        store.apply(PutCommand("k", 1))
        assert store.apply(DeleteCommand("k")) is True
        assert store.apply(DeleteCommand("k")) is False
        assert "k" not in store

    def test_compare_and_swap(self):
        store = KeyValueStore()
        store.apply(PutCommand("k", 1))
        assert store.apply(CompareAndSwapCommand("k", expected=1, new_value=2)) is True
        assert store.apply(CompareAndSwapCommand("k", expected=1, new_value=3)) is False
        assert store.get("k") == 2

    def test_apply_accepts_dict_commands(self):
        # The asyncio runtime delivers commands in their JSON form.
        store = KeyValueStore()
        store.apply({"op": "put", "key": "a", "value": 10})
        assert store.apply({"op": "get", "key": "a"}) == 10
        assert store.apply({"op": "cas", "key": "a", "expected": 10, "new_value": 11}) is True
        assert store.apply({"op": "delete", "key": "a"}) is True

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            KeyValueStore().apply(("unknown",))
        with pytest.raises(ProtocolError):
            command_from_dict({"op": "exotic"})

    def test_snapshot_and_restore(self):
        store = KeyValueStore()
        store.apply(PutCommand("a", 1))
        snapshot = store.snapshot()
        other = KeyValueStore()
        other.restore(snapshot)
        assert other.get("a") == 1
        # The snapshot is a copy, not a live view.
        store.apply(PutCommand("a", 2))
        assert snapshot["a"] == 1

    def test_determinism_across_replicas(self):
        commands = [
            PutCommand("x", 1),
            PutCommand("y", 2),
            CompareAndSwapCommand("x", 1, 10),
            DeleteCommand("y"),
        ]
        first, second = KeyValueStore(), KeyValueStore()
        first_results = [first.apply(command) for command in commands]
        second_results = [second.apply(command) for command in commands]
        assert first_results == second_results
        assert first.snapshot() == second.snapshot()

    def test_applied_count_and_len(self):
        store = KeyValueStore()
        store.apply(PutCommand("x", 1))
        store.apply(PutCommand("y", 1))
        assert store.applied_count == 2
        assert len(store) == 2

    def test_command_to_dict_round_trip(self):
        for command in (
            PutCommand("k", 5),
            GetCommand("k"),
            DeleteCommand("k"),
            CompareAndSwapCommand("k", 1, 2),
        ):
            assert command_from_dict(command.to_dict()) == command


class TestAppendRegister:
    def test_records_commands_in_order(self):
        register = AppendRegister()
        assert register.apply("a") == 1
        assert register.apply("b") == 2
        assert register.history == ["a", "b"]

    def test_snapshot_restore(self):
        register = AppendRegister()
        register.apply("a")
        clone = AppendRegister()
        clone.restore(register.snapshot())
        assert clone.history == ["a"]


class TestCounterMachine:
    def test_incr_decr_add(self):
        counter = CounterMachine()
        assert counter.apply("incr") == 1
        assert counter.apply(("add", 5)) == 6
        assert counter.apply("decr") == 5

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            CounterMachine().apply("unknown")

    def test_snapshot_restore(self):
        counter = CounterMachine()
        counter.apply(("add", 7))
        clone = CounterMachine()
        clone.restore(counter.snapshot())
        assert clone.value == 7

"""The benchmark ledger's compare gate (``benchmarks/ledger.py``).

The recording half is exercised by the CI ``bench-smoke`` job (it is a
wall-clock measurement and has no place in a deterministic test suite); the
*compare* half is pure logic and is pinned here: direction-aware deltas, the
25% regression threshold, and the non-zero exit code that gates CI.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_LEDGER_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "ledger.py"
_spec = importlib.util.spec_from_file_location("bench_ledger", _LEDGER_PATH)
ledger = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(ledger)


def _ledger_with(entries):
    return {"schema": 1, "suite": "core", "entries": entries}


def _rate(name, value):
    return {
        "name": name,
        "metric": "episodes_per_s",
        "value": value,
        "unit": "1/s",
        "higher_is_better": True,
    }


def _wall(name, value):
    return {
        "name": name,
        "metric": "quick_wall_s",
        "value": value,
        "unit": "s",
        "higher_is_better": False,
    }


class TestCompare:
    def test_identical_ledgers_have_no_regressions(self, capsys):
        base = _ledger_with([_rate("a", 100.0), _wall("b", 2.0)])
        assert ledger.compare(base, base, threshold=0.25) == 0

    def test_rate_drop_beyond_threshold_is_a_regression(self):
        base = _ledger_with([_rate("a", 100.0)])
        worse = _ledger_with([_rate("a", 70.0)])
        assert ledger.compare(base, worse, threshold=0.25) == 1

    def test_rate_drop_within_threshold_passes(self):
        base = _ledger_with([_rate("a", 100.0)])
        slightly_worse = _ledger_with([_rate("a", 80.0)])
        assert ledger.compare(base, slightly_worse, threshold=0.25) == 0

    def test_improvement_is_never_a_regression(self):
        base = _ledger_with([_rate("a", 100.0), _wall("b", 2.0)])
        better = _ledger_with([_rate("a", 400.0), _wall("b", 0.5)])
        assert ledger.compare(base, better, threshold=0.25) == 0

    def test_wall_time_direction_is_lower_is_better(self):
        base = _ledger_with([_wall("b", 2.0)])
        slower = _ledger_with([_wall("b", 3.0)])
        assert ledger.compare(base, slower, threshold=0.25) == 1

    def test_new_and_missing_entries_are_reported_not_fatal(self, capsys):
        base = _ledger_with([_rate("gone", 10.0)])
        candidate = _ledger_with([_rate("fresh", 10.0)])
        assert ledger.compare(base, candidate, threshold=0.25) == 0
        out = capsys.readouterr().out
        assert "NEW" in out and "MISSING" in out


class TestMainExitCodes:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_regression_exits_one(self, tmp_path):
        base = self._write(tmp_path, "base.json", _ledger_with([_rate("a", 100.0)]))
        bad = self._write(tmp_path, "bad.json", _ledger_with([_rate("a", 10.0)]))
        assert ledger.main(["compare", base, bad]) == 1

    def test_clean_compare_exits_zero(self, tmp_path):
        base = self._write(tmp_path, "base.json", _ledger_with([_rate("a", 100.0)]))
        assert ledger.main(["compare", base, base]) == 0

    def test_suite_mismatch_exits_two(self, tmp_path):
        core = self._write(tmp_path, "core.json", _ledger_with([]))
        experiments = self._write(
            tmp_path,
            "experiments.json",
            {"schema": 1, "suite": "experiments", "entries": []},
        )
        assert ledger.main(["compare", core, experiments]) == 2

    def test_custom_threshold_is_honoured(self, tmp_path):
        base = self._write(tmp_path, "base.json", _ledger_with([_rate("a", 100.0)]))
        dip = self._write(tmp_path, "dip.json", _ledger_with([_rate("a", 90.0)]))
        assert ledger.main(["compare", base, dip]) == 0
        assert ledger.main(["compare", base, dip, "--threshold", "0.05"]) == 1


class TestHelpers:
    def test_second_highest_resists_one_fast_outlier(self):
        assert ledger._second_highest([10.0, 11.0, 99.0]) == 11.0
        assert ledger._second_highest([10.0]) == 10.0

    def test_episode_counts_scale_down_with_size(self):
        assert ledger._episodes_for(16, quick=False) >= ledger._episodes_for(
            256, quick=False
        )
        assert ledger._episodes_for(256, quick=False) >= 2

"""Unit tests for the cluster-wide election observer."""

from repro.cluster.observers import ElectionObserver
from repro.raft.state import Role


def populated_observer():
    observer = ElectionObserver()
    # Simulated history: crash at t=1000; S2 and S3 campaign in term 2 and
    # split; S2 wins later in term 3.
    observer.on_election_timeout(2, term=1, attempt=0, time_ms=1_400.0)
    observer.on_election_timeout(3, term=1, attempt=0, time_ms=1_450.0)
    observer.on_election_started(2, term=2, time_ms=1_400.0)
    observer.on_election_started(3, term=2, time_ms=1_450.0)
    observer.on_vote_granted(4, 2, term=2, time_ms=1_600.0)
    observer.on_vote_granted(5, 3, term=2, time_ms=1_650.0)
    observer.on_election_timeout(2, term=2, attempt=1, time_ms=3_000.0)
    observer.on_election_started(2, term=3, time_ms=3_000.0)
    observer.on_leader_elected(2, term=3, votes=3, time_ms=3_400.0)
    observer.on_role_change(2, Role.CANDIDATE, Role.LEADER, term=3, time_ms=3_400.0)
    return observer


class TestEventCollection:
    def test_events_are_recorded_with_timestamps(self):
        observer = populated_observer()
        assert len(observer.timeouts) == 3
        assert len(observer.campaigns) == 3
        assert len(observer.votes) == 2
        assert len(observer.leaders) == 1
        assert len(observer.role_changes) == 1

    def test_clear_resets_all_collections(self):
        observer = populated_observer()
        observer.clear()
        assert not observer.timeouts and not observer.campaigns
        assert not observer.votes and not observer.leaders


class TestQueries:
    def test_first_timeout_after(self):
        observer = populated_observer()
        event = observer.first_timeout_after(1_000.0)
        assert event.node_id == 2 and event.time_ms == 1_400.0
        assert observer.first_timeout_after(5_000.0) is None

    def test_leader_elected_after_with_exclusion(self):
        observer = populated_observer()
        elected = observer.leader_elected_after(1_000.0)
        assert elected.leader_id == 2 and elected.term == 3
        assert observer.leader_elected_after(1_000.0, exclude=(2,)) is None
        assert observer.leader_elected_after(4_000.0) is None

    def test_campaigns_after_and_grouping(self):
        observer = populated_observer()
        assert len(observer.campaigns_after(1_000.0)) == 3
        grouped = observer.campaign_terms_after(1_000.0)
        assert sorted(grouped[2]) == [2, 3]
        assert grouped[3] == [2]

    def test_split_vote_detection(self):
        observer = populated_observer()
        # Term 2 had two campaigns and no winner -> split vote occurred.
        assert observer.split_vote_occurred_after(1_000.0)
        # After 2000 ms only the term-3 campaign (which won) remains.
        assert not observer.split_vote_occurred_after(2_000.0)

    def test_no_split_when_concurrent_campaigns_use_different_terms(self):
        observer = ElectionObserver()
        observer.on_election_started(2, term=5, time_ms=10.0)
        observer.on_election_started(3, term=8, time_ms=10.0)
        observer.on_leader_elected(3, term=8, votes=3, time_ms=300.0)
        assert not observer.split_vote_occurred_after(0.0)

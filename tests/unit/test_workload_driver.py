"""Unit tests for the workload driver, measurement records and aggregate."""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.harness import ElectionHarness
from repro.cluster.observers import ElectionObserver
from repro.cluster.workload import ClientWorkload
from repro.common.errors import ClusterError, SimulationError
from repro.net.latency import ConstantLatency
from repro.statemachine.kvstore import PutCommand
from repro.workload import (
    WorkloadAggregate,
    WorkloadDriver,
    WorkloadMeasurement,
    WorkloadSet,
    legacy_interval,
)
from repro.workload.specs import KeyspaceSpec, ValueSizeSpec, WorkloadSpec

FAST_LATENCY = ConstantLatency(5.0)


def stabilized(protocol="raft", size=3, seed=0):
    observer = ElectionObserver()
    cluster = build_cluster(
        protocol=protocol,
        size=size,
        seed=seed,
        latency=FAST_LATENCY,
        listeners=(observer,),
    )
    harness = ElectionHarness(cluster, observer)
    cluster.start_all()
    harness.stabilize()
    return cluster, harness


def drive(spec, seed=0, duration_ms=3_000.0, leader_selector=None, finalize=True):
    cluster, harness = stabilized(seed=seed)
    driver = WorkloadDriver(
        cluster, spec, seed=seed, leader_selector=leader_selector
    )
    driver.start()
    harness.run_for(duration_ms)
    if finalize:
        driver.finalize()
    return driver, cluster, harness


class TestLegacyMode:
    def test_replays_the_retired_client_workload_exactly(self):
        # Two identical clusters, same seed: the retired fixed-interval loop
        # and the legacy-interval driver must produce the same counters and
        # the same replicated log (the byte-identity contract that keeps the
        # fig11/avail golden reports valid).
        old_cluster, old_harness = stabilized(seed=7)
        old = ClientWorkload(old_cluster, interval_ms=100.0)
        old.start()
        old_harness.run_for(2_000.0)
        old.stop()

        new_cluster, new_harness = stabilized(seed=7)
        driver = WorkloadDriver(new_cluster, legacy_interval(100.0), seed=7)
        driver.start()
        new_harness.run_for(2_000.0)
        driver.stop()

        assert (driver.proposed, driver.rejected, driver.dropped) == (
            old.proposed,
            old.rejected,
            old.dropped,
        )
        old_log = [(e.index, e.term, e.command) for e in old_cluster.node(1).log]
        new_log = [(e.index, e.term, e.command) for e in new_cluster.node(1).log]
        assert new_log == old_log

    def test_legacy_mode_tracks_nothing(self):
        driver, _, _ = drive(legacy_interval(100.0), duration_ms=1_000.0)
        assert driver.proposed > 0
        assert driver.committed == 0
        assert driver.latencies_ms == ()
        assert driver.pending_count == 0


class TestClosedLoop:
    def test_ops_commit_with_positive_latencies(self):
        driver, _, _ = drive("closed-loop", duration_ms=3_000.0, finalize=False)
        assert driver.proposed > 0
        assert driver.committed > 0
        assert all(latency > 0 for latency in driver.latencies_ms)
        driver.finalize()
        # Every proposed op resolved one way: committed or lost.
        assert driver.committed + driver.lost == driver.proposed
        assert driver.pending_count == 0

    def test_healthy_cluster_loses_nothing(self):
        driver, _, _ = drive("closed-loop", duration_ms=3_000.0)
        assert driver.lost == 0
        assert driver.dropped == 0

    def test_finalize_is_idempotent(self):
        driver, _, _ = drive("closed-loop", duration_ms=2_000.0)
        committed = driver.committed
        driver.finalize()
        assert driver.committed == committed


class TestOpenLoop:
    def test_uniform_arrivals_issue_at_the_configured_rate(self):
        spec = WorkloadSpec(
            name="t-uniform", mode="open", arrival="uniform", rate_per_s=10.0
        )
        driver, _, _ = drive(spec, duration_ms=3_000.0)
        # 10/s over 3 s of healthy cluster: every arrival proposes.
        assert driver.proposed == 30
        assert driver.committed + driver.lost == driver.proposed

    def test_burst_arrivals_issue_whole_bursts(self):
        spec = WorkloadSpec(
            name="t-burst",
            mode="open",
            arrival="burst",
            burst_size=5,
            burst_interval_ms=1_000.0,
        )
        driver, _, _ = drive(spec, duration_ms=3_100.0)
        assert driver.proposed == 15

    def test_poisson_arrivals_are_seed_deterministic(self):
        first, _, _ = drive("open-poisson", seed=11, duration_ms=3_000.0)
        second, _, _ = drive("open-poisson", seed=11, duration_ms=3_000.0)
        assert first.proposed == second.proposed
        assert first.latencies_ms == second.latencies_ms


class TestKeyAndValueModels:
    def test_round_robin_cycles_the_keyspace(self):
        spec = WorkloadSpec(
            name="t-rr",
            mode="open",
            arrival="uniform",
            rate_per_s=10.0,
            keyspace=KeyspaceSpec(keys=4),
        )
        driver, cluster, _ = drive(spec, duration_ms=1_000.0)
        keys = [entry.command.key for entry in cluster.node(1).log]
        assert keys[:4] == ["key-0", "key-1", "key-2", "key-3"]

    def test_hotspot_keys_stay_in_range(self):
        spec = WorkloadSpec(
            name="t-hot",
            mode="open",
            arrival="uniform",
            rate_per_s=20.0,
            keyspace=KeyspaceSpec(mode="hotspot", keys=8),
        )
        driver, cluster, _ = drive(spec, duration_ms=2_000.0)
        indexes = {
            int(entry.command.key.removeprefix("key-"))
            for entry in cluster.node(1).log
        }
        assert indexes <= set(range(8))

    def test_value_sizes_follow_the_spec(self):
        spec = WorkloadSpec(
            name="t-val",
            mode="open",
            arrival="uniform",
            rate_per_s=10.0,
            value_size=ValueSizeSpec(mode="uniform", min_size=8, max_size=12),
        )
        driver, cluster, _ = drive(spec, duration_ms=1_000.0)
        lengths = {len(entry.command.value) for entry in cluster.node(1).log}
        assert lengths
        assert all(8 <= length <= 12 for length in lengths)


class TestFailurePaths:
    def test_no_leader_counts_dropped(self):
        spec = WorkloadSpec(
            name="t-drop", mode="open", arrival="uniform", rate_per_s=10.0
        )
        driver, _, _ = drive(
            spec, duration_ms=2_000.0, leader_selector=lambda: None
        )
        assert driver.proposed == 0
        assert driver.dropped == 20

    def test_not_leader_exhausts_retries_then_rejects(self):
        spec = WorkloadSpec(
            name="t-retry",
            mode="open",
            arrival="uniform",
            rate_per_s=5.0,
            max_retries=2,
            retry_backoff_ms=10.0,
        )
        cluster, harness = stabilized()
        leader = cluster.leader()
        follower = next(
            node
            for node in cluster.nodes.values()
            if node.node_id != leader.node_id
        )
        driver = WorkloadDriver(
            cluster, spec, leader_selector=lambda: follower
        )
        driver.start()
        # 10 arrivals at 200 ms gaps; the extra 100 ms lets the last op's
        # retry chain (2 x 10 ms backoff) finish inside the window.
        harness.run_for(2_100.0)
        driver.finalize()
        assert driver.proposed == 0
        assert driver.rejected == 10
        assert driver.retries == 20  # two extra attempts per op

    def test_finalize_counts_unverifiable_pending_ops_as_lost(self):
        driver, _, _ = drive("closed-loop", duration_ms=2_000.0, finalize=False)
        # An op the leader accepted under a term whose entry never survived.
        driver._pending[(999, 99)] = _fake_op()
        proposed_before = driver.proposed
        driver.proposed += 1
        driver.finalize()
        assert driver.lost == 1
        assert driver.proposed == proposed_before + 1

    def test_ground_truth_divergence_raises(self):
        driver, cluster, _ = drive(
            "closed-loop", duration_ms=2_000.0, finalize=False
        )
        for node in cluster.running_nodes():
            node.state_machine.apply(PutCommand(key="rogue", value="x"))
        with pytest.raises(SimulationError, match="ground truth diverged"):
            driver.finalize()


def _fake_op():
    from repro.workload.driver import _Op

    return _Op(10_000, PutCommand(key="ghost", value="v"), None)


class TestWorkloadMeasurement:
    def _measurement(self, **overrides):
        values = dict(
            protocol="raft",
            cluster_size=3,
            seed=0,
            plan="p",
            workload="closed-loop",
            window_ms=10_000.0,
            proposed=50,
            committed=45,
            retries=2,
            dropped=3,
            rejected=1,
            lost=5,
            outage_count=2,
            leaderless_ms=1_000.0,
            latencies_ms=(250.0, 300.0),
        )
        values.update(overrides)
        return WorkloadMeasurement(**values)

    def test_ops_per_s_and_issued(self):
        measurement = self._measurement()
        assert measurement.ops_per_s == pytest.approx(4.5)
        assert measurement.issued == 54

    def test_non_positive_window_rejected(self):
        with pytest.raises(ClusterError, match="window"):
            self._measurement(window_ms=0.0)

    def test_losing_more_than_proposed_rejected(self):
        with pytest.raises(ClusterError, match="cannot lose"):
            self._measurement(lost=51)

    def test_workload_set_pools_runs(self):
        collection = WorkloadSet(label="x")
        collection.add(self._measurement())
        collection.add(self._measurement(committed=90, latencies_ms=(100.0,)))
        assert len(collection) == 2
        assert collection.total_committed() == 135
        assert collection.pooled_latencies_ms() == [250.0, 300.0, 100.0]
        assert collection.mean_ops_per_s() == pytest.approx((4.5 + 9.0) / 2)

    def test_empty_set_refuses_statistics(self):
        with pytest.raises(ClusterError, match="no runs"):
            WorkloadSet(label="empty").mean_ops_per_s()


class TestWorkloadAggregate:
    def _measurement(self, **overrides):
        return TestWorkloadMeasurement()._measurement(**overrides)

    def test_add_matches_from_measurements(self):
        samples = [
            self._measurement(),
            self._measurement(committed=90, latencies_ms=(100.0, 900.0)),
        ]
        incremental = WorkloadAggregate(label="x")
        for sample in samples:
            incremental.add(sample)
        assert incremental == WorkloadAggregate.from_measurements(samples, "x")
        assert len(incremental) == 2

    def test_merge_equals_single_pass(self):
        samples = [
            self._measurement(seed=s, committed=40 + s) for s in range(4)
        ]
        left = WorkloadAggregate.from_measurements(samples[:2], "x")
        right = WorkloadAggregate.from_measurements(samples[2:], "x")
        left.merge(right)
        assert left == WorkloadAggregate.from_measurements(samples, "x")

    def test_merge_label_mismatch_rejected(self):
        left = WorkloadAggregate(label="a")
        with pytest.raises(ClusterError, match="cannot merge"):
            left.merge(WorkloadAggregate(label="b"))

    def test_queries(self):
        aggregate = WorkloadAggregate.from_measurements(
            [self._measurement()], "x"
        )
        assert aggregate.ops_per_s() == pytest.approx(4.5)
        assert aggregate.p50_ms() == pytest.approx(250.0, abs=51.0)
        assert aggregate.dropped_per_run() == 3.0
        assert aggregate.lost_per_failover() == 2.5
        assert aggregate.outages_per_run() == 2.0
        # 1 s of 10 s leaderless: the dip equals the leaderless fraction.
        assert aggregate.election_dip_percent() == pytest.approx(10.0)

    def test_no_outages_means_zero_loss_rate(self):
        aggregate = WorkloadAggregate.from_measurements(
            [self._measurement(outage_count=0, lost=0, leaderless_ms=0.0)], "x"
        )
        assert aggregate.lost_per_failover() == 0.0
        assert aggregate.election_dip_percent() == 0.0

    def test_empty_aggregate_refuses_rates(self):
        with pytest.raises(ClusterError, match="no runs"):
            WorkloadAggregate(label="x").ops_per_s()

    def test_state_round_trip(self):
        aggregate = WorkloadAggregate.from_measurements(
            [self._measurement(), self._measurement(committed=90)], "x"
        )
        assert WorkloadAggregate.from_state(aggregate.to_state()) == aggregate

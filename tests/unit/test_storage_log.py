"""Unit tests for the replicated log."""

import pytest

from repro.common.errors import StorageError
from repro.storage.log import LogEntry, ReplicatedLog


def build_log(terms):
    """Build a log whose entries carry the given terms in order."""
    log = ReplicatedLog()
    for index, term in enumerate(terms, start=1):
        log.append_entry(LogEntry(term=term, index=index, command=f"cmd{index}"))
    return log


class TestLogEntry:
    def test_rejects_invalid_index_and_term(self):
        with pytest.raises(StorageError):
            LogEntry(term=-1, index=1)
        with pytest.raises(StorageError):
            LogEntry(term=1, index=0)


class TestAppend:
    def test_empty_log_has_sentinel_values(self):
        log = ReplicatedLog()
        assert log.last_index == 0
        assert log.last_term == 0
        assert log.term_at(0) == 0
        assert len(log) == 0

    def test_append_command_assigns_next_index(self):
        log = ReplicatedLog()
        entry = log.append_command(term=2, command="set x")
        assert entry.index == 1 and entry.term == 2
        assert log.last_index == 1

    def test_append_entry_requires_contiguous_index(self):
        log = build_log([1])
        with pytest.raises(StorageError, match="non-contiguous"):
            log.append_entry(LogEntry(term=1, index=3))

    def test_append_entry_rejects_decreasing_terms(self):
        log = build_log([2])
        with pytest.raises(StorageError):
            log.append_entry(LogEntry(term=1, index=2))

    def test_entry_at_and_has_entry(self):
        log = build_log([1, 1, 2])
        assert log.entry_at(2).command == "cmd2"
        assert log.has_entry(3)
        assert not log.has_entry(4)
        with pytest.raises(StorageError):
            log.entry_at(4)

    def test_entries_from_with_limit(self):
        log = build_log([1, 1, 1, 1])
        entries = log.entries_from(2, limit=2)
        assert [entry.index for entry in entries] == [2, 3]
        assert log.entries_from(5) == []


class TestTruncate:
    def test_truncate_from_removes_suffix(self):
        log = build_log([1, 1, 2, 2])
        removed = log.truncate_from(3)
        assert removed == 2
        assert log.last_index == 2

    def test_truncate_beyond_end_is_noop(self):
        log = build_log([1])
        assert log.truncate_from(5) == 0
        assert log.last_index == 1

    def test_truncate_from_one_empties_the_log(self):
        log = build_log([1, 2, 3])
        assert log.truncate_from(1) == 3
        assert len(log) == 0
        # The tail cache resets to the empty-log sentinel, so up-to-date
        # comparisons and contiguous appends behave like a fresh log.
        assert (log.last_index, log.last_term) == (0, 0)
        log.append_command(1, "restart")
        assert log.last_index == 1

    def test_truncate_recomputes_the_tail_cache(self):
        log = build_log([1, 1, 3])
        log.truncate_from(3)
        assert (log.last_index, log.last_term) == (2, 1)
        # A lower-term append is legal again now that the term-3 tail is gone.
        log.append_command(2, "replacement")
        assert log.last_term == 2

    def test_truncate_rejects_non_positive_index(self):
        with pytest.raises(StorageError):
            build_log([1]).truncate_from(0)


class TestMergeEntries:
    def test_appends_new_entries(self):
        log = build_log([1])
        changed = log.merge_entries(1, [LogEntry(term=1, index=2, command="b")])
        assert changed
        assert log.last_index == 2

    def test_duplicate_entries_do_not_change_log(self):
        log = build_log([1, 1])
        changed = log.merge_entries(0, list(log))
        assert not changed
        assert log.last_index == 2

    def test_conflicting_suffix_is_replaced(self):
        log = build_log([1, 1, 1])
        incoming = [LogEntry(term=2, index=2, command="new2"), LogEntry(term=2, index=3, command="new3")]
        changed = log.merge_entries(1, incoming)
        assert changed
        assert log.term_at(2) == 2
        assert log.entry_at(3).command == "new3"

    def test_stale_duplicate_does_not_truncate_newer_entries(self):
        # A delayed AppendEntries carrying an old prefix must never delete
        # entries the follower already has beyond it.
        log = build_log([1, 1, 2])
        changed = log.merge_entries(1, [LogEntry(term=1, index=2, command="cmd2")])
        assert not changed
        assert log.last_index == 3

    def test_mismatched_entry_position_rejected(self):
        log = build_log([1])
        with pytest.raises(StorageError):
            log.merge_entries(1, [LogEntry(term=1, index=5, command="x")])

    def test_empty_batch_is_a_heartbeat_noop(self):
        log = build_log([1, 2])
        assert not log.merge_entries(2, [])
        assert log.last_index == 2

    def test_matching_prefix_survives_a_conflicting_tail(self):
        # Only the suffix from the first conflict is replaced; matching
        # entries before it keep their commands (they may be committed).
        log = build_log([1, 1, 1, 1])
        incoming = [
            LogEntry(term=1, index=2, command="cmd2"),
            LogEntry(term=3, index=3, command="new3"),
        ]
        assert log.merge_entries(1, incoming)
        assert log.entry_at(2).command == "cmd2"
        assert log.term_at(3) == 3
        # The old index-4 entry sat behind the conflict and is gone with it.
        assert log.last_index == 3

    def test_conflict_at_batch_start_replaces_everything_after_prev(self):
        log = build_log([1, 2, 2])
        assert log.merge_entries(0, [LogEntry(term=3, index=1, command="n1")])
        assert (log.last_index, log.last_term) == (1, 3)

    def test_merge_past_the_end_appends_the_overlap_and_the_rest(self):
        # A retransmitted batch that straddles the follower's tail: the
        # duplicate prefix is skipped, the genuinely new suffix appends.
        log = build_log([1, 1])
        incoming = [
            LogEntry(term=1, index=2, command="cmd2"),
            LogEntry(term=1, index=3, command="c3"),
            LogEntry(term=2, index=4, command="c4"),
        ]
        assert log.merge_entries(1, incoming)
        assert log.entry_at(2).command == "cmd2"
        assert [entry.index for entry in log] == [1, 2, 3, 4]

    def test_merge_is_idempotent_for_the_same_batch(self):
        log = build_log([1])
        batch = [LogEntry(term=2, index=2, command="b")]
        assert log.merge_entries(1, batch)
        assert not log.merge_entries(1, batch)
        assert log.last_index == 2


class TestConsistencyCheck:
    def test_index_zero_always_matches(self):
        assert ReplicatedLog().matches(0, 0)

    def test_matching_prev_entry(self):
        log = build_log([1, 2])
        assert log.matches(2, 2)
        assert not log.matches(2, 1)
        assert not log.matches(3, 2)


class TestUpToDateComparison:
    def test_higher_last_term_wins(self):
        mine = build_log([1, 2])
        assert mine.candidate_is_acceptable(candidate_last_term=3, candidate_last_index=1)
        assert not mine.candidate_is_acceptable(candidate_last_term=1, candidate_last_index=9)

    def test_equal_term_compares_length(self):
        mine = build_log([1, 1])
        assert mine.candidate_is_acceptable(candidate_last_term=1, candidate_last_index=2)
        assert mine.candidate_is_acceptable(candidate_last_term=1, candidate_last_index=3)
        assert not mine.candidate_is_acceptable(candidate_last_term=1, candidate_last_index=1)

    def test_is_at_least_as_up_to_date_as_is_symmetric_complement(self):
        log_a = build_log([1, 2])
        log_b = build_log([1, 1, 1])
        # A has the higher last term, so A >= B and not B >= A.
        assert log_a.is_at_least_as_up_to_date_as(log_b.last_term, log_b.last_index)
        assert not log_b.is_at_least_as_up_to_date_as(log_a.last_term, log_a.last_index)

    def test_empty_logs_are_mutually_up_to_date(self):
        log_a = ReplicatedLog()
        log_b = ReplicatedLog()
        assert log_a.is_at_least_as_up_to_date_as(log_b.last_term, log_b.last_index)

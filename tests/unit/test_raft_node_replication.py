"""Unit tests for RaftNode log replication (leader and follower sides)."""

import pytest

from helpers import FakeEnvironment, fast_protocol_config, small_cluster

from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteResponse,
)
from repro.raft.node import RaftNode
from repro.raft.state import Role
from repro.statemachine.register import AppendRegister
from repro.storage.log import LogEntry
from repro.storage.persistent import InMemoryStore


def make_follower(node_id=2, size=3, **kwargs):
    env = FakeEnvironment(node_id=node_id)
    node = RaftNode(
        node_id=node_id,
        cluster=small_cluster(size),
        env=env,
        protocol_config=fast_protocol_config(),
        **kwargs,
    )
    node.start()
    return node, env


def make_leader(node_id=1, size=3, **kwargs):
    env = FakeEnvironment(node_id=node_id)
    node = RaftNode(
        node_id=node_id,
        cluster=small_cluster(size),
        env=env,
        protocol_config=fast_protocol_config(),
        **kwargs,
    )
    node.start()
    env.fire_next_timer(f"S{node_id}:election-timeout")
    for peer in node.peers:
        node.on_message(
            peer, RequestVoteResponse(term=node.current_term, voter_id=peer, vote_granted=True)
        )
        if node.role is Role.LEADER:
            break
    assert node.role is Role.LEADER
    env.clear_sent()
    return node, env


def entries(*pairs):
    return tuple(LogEntry(term=term, index=index, command=f"c{index}") for index, term in pairs)


class TestFollowerAppendEntries:
    def test_heartbeat_adopts_leader_and_resets_timer(self):
        node, env = make_follower()
        first_timer = env.pending_timers()[0]
        node.on_message(1, AppendEntriesRequest(term=1, leader_id=1))
        assert node.leader_id == 1
        assert node.current_term == 1
        assert first_timer.cancelled
        reply = env.sent_to(1)[0]
        assert isinstance(reply, AppendEntriesResponse) and reply.success

    def test_entries_are_appended_and_acknowledged(self):
        node, env = make_follower()
        request = AppendEntriesRequest(
            term=1, leader_id=1, prev_log_index=0, prev_log_term=0,
            entries=entries((1, 1), (2, 1)), leader_commit=0,
        )
        node.on_message(1, request)
        assert node.log.last_index == 2
        reply = env.sent_to(1)[0]
        assert reply.success and reply.match_index == 2

    def test_consistency_check_failure_is_rejected_with_hint(self):
        node, env = make_follower()
        request = AppendEntriesRequest(
            term=1, leader_id=1, prev_log_index=5, prev_log_term=1,
            entries=entries((6, 1)), leader_commit=0,
        )
        node.on_message(1, request)
        reply = env.sent_to(1)[0]
        assert not reply.success
        assert reply.match_index == 0  # follower's last index, the rewind hint
        assert node.log.last_index == 0

    def test_stale_term_append_entries_rejected(self):
        store = InMemoryStore()
        store.save_term_and_vote(5, None)
        node, env = make_follower(store=store)
        node.on_message(1, AppendEntriesRequest(term=3, leader_id=1))
        reply = env.sent_to(1)[0]
        assert not reply.success
        assert reply.term == 5
        assert node.leader_id is None

    def test_commit_index_follows_leader_commit(self):
        machine = AppendRegister()
        node, env = make_follower(state_machine=machine)
        node.on_message(
            1,
            AppendEntriesRequest(
                term=1, leader_id=1, prev_log_index=0, prev_log_term=0,
                entries=entries((1, 1), (2, 1)), leader_commit=1,
            ),
        )
        assert node.commit_index == 1
        assert machine.history == ["c1"]

    def test_commit_index_capped_by_local_log(self):
        node, env = make_follower(state_machine=AppendRegister())
        node.on_message(
            1,
            AppendEntriesRequest(
                term=1, leader_id=1, prev_log_index=0, prev_log_term=0,
                entries=entries((1, 1)), leader_commit=10,
            ),
        )
        assert node.commit_index == 1

    def test_conflicting_entries_are_overwritten(self):
        store = InMemoryStore()
        log = store.load_log()
        log.append_entry(LogEntry(term=1, index=1, command="old1"))
        log.append_entry(LogEntry(term=1, index=2, command="old2"))
        node, env = make_follower(store=store)
        node.on_message(
            1,
            AppendEntriesRequest(
                term=2, leader_id=1, prev_log_index=1, prev_log_term=1,
                entries=(LogEntry(term=2, index=2, command="new2"),), leader_commit=0,
            ),
        )
        assert node.log.entry_at(2).command == "new2"

    def test_candidate_steps_down_on_current_leader_heartbeat(self):
        node, env = make_follower(node_id=3)
        env.fire_next_timer("S3:election-timeout")
        assert node.role is Role.CANDIDATE
        node.on_message(1, AppendEntriesRequest(term=node.current_term, leader_id=1))
        assert node.role is Role.FOLLOWER
        assert node.leader_id == 1


class TestLeaderReplication:
    def test_propose_appends_locally_and_broadcasts(self):
        leader, env = make_leader()
        index = leader.propose("command-1")
        assert index == 1
        assert leader.log.last_index == 1
        requests = env.sent_payloads(AppendEntriesRequest)
        assert len(requests) == 2
        assert all(len(request.entries) == 1 for request in requests)

    def test_quorum_acks_advance_commit_and_apply(self):
        machine = AppendRegister()
        leader, env = make_leader(state_machine=machine)
        index = leader.propose("value")
        leader.on_message(
            2,
            AppendEntriesResponse(
                term=leader.current_term, follower_id=2, success=True, match_index=index
            ),
        )
        assert leader.commit_index == index
        assert machine.history == ["value"]
        assert leader.result_for(index) == 1

    def test_minority_acks_do_not_commit(self):
        leader, env = make_leader(size=5)
        index = leader.propose("value")
        leader.on_message(
            2,
            AppendEntriesResponse(
                term=leader.current_term, follower_id=2, success=True, match_index=index
            ),
        )
        assert leader.commit_index == 0

    def test_failed_ack_rewinds_next_index(self):
        leader, env = make_leader()
        leader.propose("a")
        leader.propose("b")
        leader.on_message(
            2,
            AppendEntriesResponse(
                term=leader.current_term, follower_id=2, success=False, match_index=0
            ),
        )
        assert leader.progress.next_index(2) == 1
        env.clear_sent()
        env.fire_next_timer("S1:heartbeat")
        resent = [r for r in env.sent_payloads(AppendEntriesRequest) if r.entries]
        assert any(request.prev_log_index == 0 for request in resent)

    def test_heartbeat_timer_keeps_firing(self):
        leader, env = make_leader()
        env.fire_next_timer("S1:heartbeat")
        assert env.sent_payloads(AppendEntriesRequest)
        assert "S1:heartbeat" in env.pending_timer_labels()

    def test_leader_steps_down_on_higher_term_response(self):
        leader, env = make_leader()
        leader.on_message(
            2,
            AppendEntriesResponse(term=99, follower_id=2, success=False, match_index=0),
        )
        assert leader.role is Role.FOLLOWER
        assert leader.current_term == 99
        assert "S1:election-timeout" in env.pending_timer_labels()

    def test_stale_append_response_ignored(self):
        leader, env = make_leader()
        index = leader.propose("x")
        leader.on_message(
            2,
            AppendEntriesResponse(term=0, follower_id=2, success=True, match_index=index),
        )
        assert leader.commit_index == 0

    def test_result_for_unapplied_entry_raises(self):
        leader, env = make_leader()
        index = leader.propose("x")
        with pytest.raises(Exception):
            leader.result_for(index)

    def test_single_node_cluster_commits_immediately(self):
        env = FakeEnvironment(node_id=1)
        node = RaftNode(
            1,
            small_cluster(1),
            env,
            protocol_config=fast_protocol_config(),
            state_machine=AppendRegister(),
        )
        node.start()
        env.fire_next_timer("S1:election-timeout")
        assert node.role is Role.LEADER
        index = node.propose("solo")
        assert node.commit_index == index


class TestCrashRecovery:
    def test_recover_preserves_term_vote_and_log(self):
        store = InMemoryStore()
        node, env = make_follower(store=store, state_machine=AppendRegister())
        node.on_message(
            1,
            AppendEntriesRequest(
                term=4, leader_id=1, prev_log_index=0, prev_log_term=0,
                entries=entries((1, 4)), leader_commit=1,
            ),
        )
        node.stop()
        node.recover()
        assert node.current_term == 4
        assert node.log.last_index == 1
        assert node.role is Role.FOLLOWER
        assert node.is_running

    def test_recover_requires_stopped_node(self):
        node, _ = make_follower()
        with pytest.raises(Exception):
            node.recover()

    def test_stop_cancels_all_timers(self):
        node, env = make_follower()
        node.stop()
        assert env.pending_timers() == []

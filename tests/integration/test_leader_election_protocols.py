"""Integration tests: leader election end-to-end for all three protocols."""

import pytest

from repro.cluster import ElectionScenario
from repro.metrics.records import MeasurementSet
from repro.raft.state import Role

RUNS = 5


@pytest.mark.parametrize("protocol", ["raft", "escape", "zraft"])
class TestSingleFailover:
    def test_cluster_elects_leader_and_survives_leader_crash(self, protocol):
        scenario = ElectionScenario(protocol=protocol, cluster_size=5)
        cluster, harness = scenario.build(seed=11)
        cluster.start_all()
        first_leader = harness.stabilize()
        measurement = harness.crash_leader_and_measure(seed=11)
        assert measurement.converged
        assert measurement.winner_id != first_leader
        assert cluster.leader_id() == measurement.winner_id
        harness.assert_at_most_one_leader_per_term()

    def test_exactly_one_leader_among_running_nodes(self, protocol):
        scenario = ElectionScenario(protocol=protocol, cluster_size=7)
        cluster, harness = scenario.build(seed=5)
        cluster.start_all()
        harness.stabilize()
        harness.crash_leader_and_measure(seed=5)
        leaders = [
            node for node in cluster.running_nodes() if node.role is Role.LEADER
        ]
        assert len(leaders) == 1

    def test_measurement_decomposition_is_consistent(self, protocol):
        scenario = ElectionScenario(protocol=protocol, cluster_size=5)
        measurement = scenario.run(seed=2)
        assert measurement.total_ms == pytest.approx(
            measurement.detection_ms + measurement.election_ms
        )
        assert measurement.detection_ms >= 1_000.0  # at least close to the base timeout
        assert measurement.campaign_count >= 1


class TestSuccessiveFailovers:
    @pytest.mark.parametrize("protocol", ["raft", "escape"])
    def test_cluster_survives_two_successive_leader_crashes(self, protocol):
        scenario = ElectionScenario(protocol=protocol, cluster_size=7)
        cluster, harness = scenario.build(seed=21)
        cluster.start_all()
        harness.stabilize()
        first = harness.crash_leader_and_measure(seed=21)
        assert first.converged
        harness.run_for(2_000.0)
        second = harness.crash_leader_and_measure(seed=22)
        assert second.converged
        assert second.winner_id not in (first.extra["crashed_leader"], first.winner_id) or (
            second.winner_id == first.winner_id is False
        )
        harness.assert_at_most_one_leader_per_term()
        # f = 3 for a 7-server cluster, so with two crashed servers a quorum remains.
        assert len(cluster.running_nodes()) == 5

    def test_escape_keeps_grooming_after_failover(self):
        scenario = ElectionScenario(protocol="escape", cluster_size=5)
        cluster, harness = scenario.build(seed=31)
        cluster.start_all()
        harness.stabilize()
        harness.crash_leader_and_measure(seed=31)
        harness.run_for(2_000.0)
        new_leader = cluster.leader()
        assert new_leader.patrol is not None
        # The new leader's patrol covers every peer (including the crashed one).
        assert set(new_leader.patrol.assignments) == set(new_leader.peers)


class TestProtocolComparison:
    def test_escape_is_faster_than_raft_on_average(self):
        raft = MeasurementSet(
            ElectionScenario(protocol="raft", cluster_size=16).run_many(RUNS, base_seed=3)
        )
        escape = MeasurementSet(
            ElectionScenario(protocol="escape", cluster_size=16).run_many(RUNS, base_seed=3)
        )
        assert escape.mean_total_ms() < raft.mean_total_ms()

    def test_escape_never_splits_votes_without_faults(self):
        escape = MeasurementSet(
            ElectionScenario(protocol="escape", cluster_size=16).run_many(RUNS, base_seed=7)
        )
        assert escape.split_vote_fraction() == 0.0

    def test_escape_detection_is_close_to_base_timeout(self):
        # The groomed future leader holds the baseTime timeout (1500 ms); the
        # measured detection sits within one heartbeat below it and a small
        # margin above (crash lands inside a heartbeat interval).
        measurements = MeasurementSet(
            ElectionScenario(protocol="escape", cluster_size=8).run_many(RUNS, base_seed=13)
        )
        for detection in measurements.detections_ms():
            assert 1_300.0 <= detection <= 1_750.0

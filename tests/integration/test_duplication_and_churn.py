"""Integration tests: message duplication and repeated crash/recover churn."""

import random

import pytest

from repro.cluster import ElectionHarness, ElectionObserver, build_cluster
from repro.net.faults import (
    BroadcastOmissionFault,
    CompositeFault,
    MessageDuplicationFault,
)
from repro.net.latency import ConstantLatency
from repro.raft.state import Role
from repro.statemachine.kvstore import PutCommand


def build(protocol="escape", size=5, seed=1, fault=None):
    observer = ElectionObserver()
    cluster = build_cluster(
        protocol=protocol,
        size=size,
        seed=seed,
        latency=ConstantLatency(10.0),
        fault=fault,
        listeners=(observer,),
        trace=False,
    )
    harness = ElectionHarness(cluster, observer)
    cluster.start_all()
    harness.stabilize()
    return cluster, harness


class TestMessageDuplication:
    def test_duplication_fault_injects_extra_deliveries(self):
        cluster, harness = build(fault=MessageDuplicationFault(rate=0.5))
        harness.run_for(2_000.0)
        assert cluster.network.stats.duplicated > 0
        assert cluster.network.stats.delivered > cluster.network.stats.sent * 0.9

    @pytest.mark.parametrize("protocol", ["raft", "escape"])
    def test_duplicated_rpcs_do_not_break_safety_or_replication(self, protocol):
        cluster, harness = build(protocol=protocol, fault=MessageDuplicationFault(rate=0.5))
        for index in range(4):
            cluster.propose_via_leader(PutCommand(f"k{index}", index))
            harness.run_for(100.0)
        harness.run_for(1_000.0)
        harness.crash_leader_and_measure(seed=1)
        harness.run_for(1_000.0)
        harness.assert_at_most_one_leader_per_term()
        assert harness.committed_prefixes_consistent()
        # Every running node applied each committed command exactly once.
        for node in cluster.running_nodes():
            assert node.state_machine.applied_count == node.commit_index

    def test_duplication_does_not_cause_split_votes_in_escape(self):
        cluster, harness = build(protocol="escape", fault=MessageDuplicationFault(rate=0.8))
        measurement = harness.crash_leader_and_measure(seed=2)
        assert measurement.converged
        assert not measurement.split_vote

    def test_duplication_survives_composition_with_loss(self):
        # Regression: CompositeFault used to swallow should_duplicate, so a
        # duplication fault wrapped with a loss model was silently disabled.
        fault = CompositeFault(
            injectors=(BroadcastOmissionFault(0.2), MessageDuplicationFault(0.1))
        )
        cluster, harness = build(protocol="escape", fault=fault)
        harness.run_for(3_000.0)
        stats = cluster.network.stats
        assert stats.duplicated > 0
        assert stats.dropped_by_fault > 0  # the omission half keeps working
        measurement = harness.crash_leader_and_measure(seed=3)
        assert measurement.converged
        harness.assert_at_most_one_leader_per_term()


class TestChurn:
    def test_cluster_survives_repeated_random_crash_recover_cycles(self):
        cluster, harness = build(protocol="escape", size=7, seed=13)
        rng = random.Random(13)
        for cycle in range(6):
            running = [node.node_id for node in cluster.running_nodes()]
            victim = rng.choice(running)
            cluster.crash(victim)
            harness.run_for(3_000.0)
            # A quorum (>= 4 of 7) is always alive, so a leader must exist or
            # re-emerge within a few election timeouts.
            assert len(cluster.running_nodes()) >= 6
            assert harness.cluster.world.scheduler.run_until_condition(
                cluster.has_leader, max_time_ms=cluster.world.now() + 30_000.0
            )
            cluster.recover(victim)
            harness.run_for(1_000.0)
        harness.assert_at_most_one_leader_per_term()
        assert harness.committed_prefixes_consistent()

    def test_escape_keeps_electing_within_bounds_under_churn(self):
        cluster, harness = build(protocol="escape", size=7, seed=17)
        totals = []
        for round_index in range(3):
            harness.run_for(2_000.0)
            measurement = harness.crash_leader_and_measure(seed=round_index)
            assert measurement.converged
            totals.append(measurement.total_ms)
            crashed = measurement.extra["crashed_leader"]
            cluster.recover(crashed)
        # Every failover, including later ones with previously crashed servers
        # back as followers, finishes within a few seconds.
        assert all(total < 8_000.0 for total in totals)
        harness.assert_at_most_one_leader_per_term()

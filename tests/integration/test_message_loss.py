"""Integration tests: behaviour under broadcast message loss (Section VI-D)."""

import pytest

from repro.cluster import ElectionScenario
from repro.metrics.records import MeasurementSet

RUNS = 5


class TestLiveness:
    @pytest.mark.parametrize("protocol", ["raft", "zraft", "escape"])
    @pytest.mark.parametrize("loss", [0.2, 0.4])
    def test_every_protocol_still_elects_a_leader_under_loss(self, protocol, loss):
        scenario = ElectionScenario(
            protocol=protocol,
            cluster_size=10,
            loss_rate=loss,
            workload_interval_ms=250.0,
        )
        measurement = scenario.run(seed=17)
        assert measurement.converged

    def test_replication_continues_under_loss(self):
        scenario = ElectionScenario(
            protocol="escape", cluster_size=5, loss_rate=0.2, workload_interval_ms=100.0
        )
        cluster, harness = scenario.build(seed=4)
        cluster.start_all()
        harness.stabilize()
        from repro.cluster.workload import ClientWorkload

        workload = ClientWorkload(cluster, interval_ms=100.0)
        workload.start()
        harness.run_for(3_000.0)
        workload.stop()
        leader = cluster.leader()
        assert leader.commit_index > 10
        assert harness.committed_prefixes_consistent()


class TestPaperOrdering:
    def test_escape_beats_raft_under_heavy_loss(self):
        # Figure 11: the gap between ESCAPE and Raft widens with the loss rate.
        raft = MeasurementSet(
            ElectionScenario(
                protocol="raft", cluster_size=10, loss_rate=0.4, workload_interval_ms=250.0
            ).run_many(RUNS, base_seed=29)
        )
        escape = MeasurementSet(
            ElectionScenario(
                protocol="escape", cluster_size=10, loss_rate=0.4, workload_interval_ms=250.0
            ).run_many(RUNS, base_seed=29)
        )
        assert escape.mean_total_ms() < raft.mean_total_ms()

    def test_raft_split_votes_increase_with_loss(self):
        low_loss = MeasurementSet(
            ElectionScenario(
                protocol="raft", cluster_size=10, loss_rate=0.0
            ).run_many(RUNS, base_seed=31)
        )
        high_loss = MeasurementSet(
            ElectionScenario(
                protocol="raft", cluster_size=10, loss_rate=0.4, workload_interval_ms=250.0
            ).run_many(RUNS, base_seed=31)
        )
        assert high_loss.split_vote_fraction() >= low_loss.split_vote_fraction()

    def test_loss_increases_election_time_for_every_protocol(self):
        for protocol in ("raft", "escape"):
            healthy = MeasurementSet(
                ElectionScenario(protocol=protocol, cluster_size=10).run_many(
                    RUNS, base_seed=37
                )
            )
            lossy = MeasurementSet(
                ElectionScenario(
                    protocol=protocol,
                    cluster_size=10,
                    loss_rate=0.4,
                    workload_interval_ms=250.0,
                ).run_many(RUNS, base_seed=37)
            )
            assert lossy.mean_total_ms() >= healthy.mean_total_ms() * 0.95

"""Integration tests for the asyncio real-time runtime (localhost UDP)."""

import asyncio

import pytest

from repro.runtime import LocalAsyncCluster
from repro.statemachine.kvstore import GetCommand, PutCommand


def run_async(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestLiveCluster:
    def test_escape_cluster_elects_leader_and_replicates(self):
        async def scenario():
            cluster = LocalAsyncCluster(protocol="escape", size=5, base_port=29600, seed=1)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout_ms=10_000.0)
                assert leader.node_id in cluster.nodes
                previous = await cluster.propose_and_wait(PutCommand("k", "v1"))
                assert previous is None
                value = await cluster.propose_and_wait(GetCommand("k"))
                assert value == "v1"
            finally:
                await cluster.shutdown()

        run_async(scenario())

    def test_failover_on_live_sockets(self):
        async def scenario():
            cluster = LocalAsyncCluster(protocol="escape", size=5, base_port=29620, seed=2)
            await cluster.start()
            try:
                await cluster.wait_for_leader(timeout_ms=10_000.0)
                await cluster.propose_and_wait(PutCommand("before", 1))
                crashed, new_leader, failover_ms = await cluster.crash_leader_and_wait(
                    timeout_ms=15_000.0
                )
                assert new_leader.node_id != crashed
                assert failover_ms < 10_000.0
                value = await cluster.propose_and_wait(GetCommand("before"))
                assert value == 1
            finally:
                await cluster.shutdown()

        run_async(scenario())

    def test_raft_protocol_also_runs_live(self):
        async def scenario():
            cluster = LocalAsyncCluster(protocol="raft", size=3, base_port=29640, seed=3)
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout_ms=10_000.0)
                assert leader.current_term >= 1
                await cluster.propose_and_wait(PutCommand("x", 1))
            finally:
                await cluster.shutdown()

        run_async(scenario())

    def test_transport_loss_injection_does_not_block_progress(self):
        async def scenario():
            cluster = LocalAsyncCluster(
                protocol="escape", size=3, base_port=29660, seed=4, loss_rate=0.1
            )
            await cluster.start()
            try:
                leader = await cluster.wait_for_leader(timeout_ms=15_000.0)
                assert leader is not None
            finally:
                await cluster.shutdown()

        run_async(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            cluster = LocalAsyncCluster(protocol="escape", size=3, base_port=29680, seed=5)
            await cluster.start()
            try:
                with pytest.raises(Exception):
                    await cluster.start()
            finally:
                await cluster.shutdown()

        run_async(scenario())

"""Integration tests pinning the paper's headline claims (Section VI).

These tests use fewer runs and smaller scales than the paper's 1000-run
sweeps, so they assert the *shape* of each result -- who wins, direction of
trends, hard bounds ESCAPE is claimed to satisfy -- rather than exact numbers.
EXPERIMENTS.md records the quantitative side-by-side comparison.
"""

import pytest

from repro.analysis.theory import escape_expected_detection_ms, raft_expected_detection_ms
from repro.cluster import ElectionScenario
from repro.metrics.records import MeasurementSet

RUNS = 6
SIZES = (8, 16, 32)


def measure(protocol, size, runs=RUNS, seed=101, **kwargs):
    scenario = ElectionScenario(protocol=protocol, cluster_size=size, **kwargs)
    return MeasurementSet(scenario.run_many(runs, base_seed=seed), label=f"{protocol}@{size}")


class TestSectionVIB:
    """Figure 9: election time under leader failures at increasing scales."""

    @pytest.mark.parametrize("size", SIZES)
    def test_escape_elections_complete_within_two_seconds(self, size):
        # "In ESCAPE, all the election campaigns were completed within 2000 ms"
        measurements = measure("escape", size)
        assert measurements.convergence_fraction() == 1.0
        assert max(measurements.totals_ms()) < 2_000.0

    @pytest.mark.parametrize("size", SIZES)
    def test_escape_never_splits_votes(self, size):
        # "... with no occurrence of split votes."
        assert measure("escape", size).split_vote_fraction() == 0.0

    def test_escape_reduction_grows_with_cluster_size(self):
        # "ESCAPE shortens the leader election time by 11.6% and 21.3% at
        # sizes of 8 and 128 servers" -- the reduction grows with scale.
        small_raft = measure("raft", 8, runs=8)
        small_escape = measure("escape", 8, runs=8)
        large_raft = measure("raft", 32, runs=8)
        large_escape = measure("escape", 32, runs=8)
        small_reduction = small_raft.mean_total_ms() - small_escape.mean_total_ms()
        large_reduction = large_raft.mean_total_ms() - large_escape.mean_total_ms()
        assert small_reduction > 0
        assert large_reduction > 0
        assert large_reduction >= small_reduction * 0.8  # monotone up to noise

    def test_raft_split_votes_grow_with_cluster_size(self):
        small = measure("raft", 8, runs=8, seed=55)
        large = measure("raft", 32, runs=8, seed=55)
        assert large.split_vote_fraction() >= small.split_vote_fraction()


class TestSectionVIC:
    """Figure 10: competing-candidate phases."""

    def test_raft_election_time_grows_roughly_linearly_with_phases(self):
        times = []
        for phases in (0, 1, 2):
            measurements = MeasurementSet(
                ElectionScenario(
                    protocol="raft", cluster_size=8, contention_phases=phases
                ).run_many(4, base_seed=71)
            )
            times.append(measurements.mean_total_ms())
        assert times[1] > times[0] + 1_000.0
        assert times[2] > times[1] + 1_000.0

    def test_escape_is_flat_in_the_number_of_phases(self):
        times = []
        for phases in (0, 1, 2, 3):
            measurements = MeasurementSet(
                ElectionScenario(
                    protocol="escape", cluster_size=8, contention_phases=phases
                ).run_many(4, base_seed=71)
            )
            assert measurements.split_vote_fraction() == 0.0
            times.append(measurements.mean_total_ms())
        assert max(times) - min(times) < 1_500.0
        assert max(times) < 3_500.0

    def test_escape_wins_by_a_growing_factor_under_contention(self):
        raft = MeasurementSet(
            ElectionScenario(
                protocol="raft", cluster_size=8, contention_phases=3
            ).run_many(4, base_seed=77)
        )
        escape = MeasurementSet(
            ElectionScenario(
                protocol="escape", cluster_size=8, contention_phases=3
            ).run_many(4, base_seed=77)
        )
        # Paper: ~6.5 s vs < 2 s at three phases (a ~70 % reduction); we only
        # require a clear factor-of-two separation here.
        assert raft.mean_total_ms() > 2.0 * escape.mean_total_ms()


class TestSectionVID:
    """Figure 11: message loss."""

    def test_ordering_raft_worst_escape_best_under_heavy_loss(self):
        results = {}
        splits = {}
        for protocol in ("raft", "zraft", "escape"):
            measurements = MeasurementSet(
                ElectionScenario(
                    protocol=protocol,
                    cluster_size=10,
                    loss_rate=0.4,
                    workload_interval_ms=250.0,
                ).run_many(8, base_seed=83)
            )
            results[protocol] = measurements.mean_total_ms()
            splits[protocol] = measurements.split_vote_fraction()
        # ESCAPE clearly beats Raft; Z-Raft sits in between up to small-sample
        # noise (at 10 servers the paper's own gap is only ~14 %).
        assert results["escape"] < results["raft"]
        assert results["zraft"] < results["raft"] * 1.3
        # The prioritized protocols avoid same-term competition even under
        # heavy loss, while Raft splits votes frequently.
        assert splits["raft"] > 0.0
        assert splits["zraft"] == 0.0

    def test_election_time_grows_with_loss_rate_for_raft(self):
        means = []
        for loss in (0.0, 0.2, 0.4):
            means.append(
                MeasurementSet(
                    ElectionScenario(
                        protocol="raft",
                        cluster_size=10,
                        loss_rate=loss,
                        workload_interval_ms=250.0 if loss else 0.0,
                    ).run_many(6, base_seed=89)
                ).mean_total_ms()
            )
        assert means[2] > means[0]


class TestAnalyticalCrossCheck:
    """The simulator's averages track the closed-form detection models."""

    def test_raft_detection_matches_order_statistics_model(self):
        measurements = measure("raft", 16, runs=8, seed=91)
        predicted = raft_expected_detection_ms(
            1_500.0, 3_000.0, followers=15, heartbeat_interval_ms=150.0
        )
        observed = sum(measurements.detections_ms()) / len(measurements.detections_ms())
        assert observed == pytest.approx(predicted, rel=0.25)

    def test_escape_detection_matches_base_time_model(self):
        measurements = measure("escape", 16, runs=8, seed=91)
        predicted = escape_expected_detection_ms(1_500.0, heartbeat_interval_ms=150.0)
        observed = sum(measurements.detections_ms()) / len(measurements.detections_ms())
        assert observed == pytest.approx(predicted, rel=0.15)

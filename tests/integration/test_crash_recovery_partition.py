"""Integration tests: crash/recovery of followers and leaders, and partitions."""

import pytest

from repro.cluster import ElectionHarness, ElectionObserver, build_cluster
from repro.escape.node import EscapeNode
from repro.net.latency import ConstantLatency
from repro.raft.state import Role
from repro.statemachine.kvstore import PutCommand


def build(protocol="escape", size=5, seed=1):
    observer = ElectionObserver()
    cluster = build_cluster(
        protocol=protocol,
        size=size,
        seed=seed,
        latency=ConstantLatency(10.0),
        listeners=(observer,),
        trace=False,
    )
    harness = ElectionHarness(cluster, observer)
    cluster.start_all()
    harness.stabilize()
    return cluster, harness


class TestFollowerCrashRecovery:
    @pytest.mark.parametrize("protocol", ["raft", "escape"])
    def test_recovered_follower_catches_up(self, protocol):
        cluster, harness = build(protocol=protocol)
        victim = next(
            node.node_id
            for node in cluster.running_nodes()
            if node.role is Role.FOLLOWER
        )
        cluster.crash(victim)
        for index in range(3):
            cluster.propose_via_leader(PutCommand(f"k{index}", index))
            harness.run_for(100.0)
        harness.run_for(500.0)
        cluster.recover(victim)
        harness.run_for(2_000.0)
        recovered = cluster.node(victim)
        assert recovered.log.last_index == 3
        assert recovered.commit_index == 3
        assert recovered.role is Role.FOLLOWER

    def test_minority_of_follower_crashes_does_not_disturb_leadership(self):
        cluster, harness = build(protocol="escape", size=7)
        leader_before = cluster.leader_id()
        followers = [
            node.node_id
            for node in cluster.running_nodes()
            if node.role is Role.FOLLOWER
        ]
        for victim in followers[:3]:  # f = 3 for n = 7
            cluster.crash(victim)
        harness.run_for(5_000.0)
        assert cluster.leader_id() == leader_before

    def test_recovered_escape_follower_gets_a_fresh_configuration(self):
        cluster, harness = build(protocol="escape")
        victim = next(
            node.node_id
            for node in cluster.running_nodes()
            if node.role is Role.FOLLOWER
        )
        victim_node = cluster.node(victim)
        assert isinstance(victim_node, EscapeNode)
        cluster.crash(victim)
        harness.run_for(2_000.0)  # the patrol demotes the silent follower
        stale_clock = victim_node.configuration.conf_clock
        cluster.recover(victim)
        harness.run_for(2_000.0)  # heartbeats re-issue a configuration
        assert victim_node.configuration.conf_clock >= stale_clock
        assert victim_node.configuration_updates >= 1


class TestLeaderCrashRecovery:
    @pytest.mark.parametrize("protocol", ["raft", "escape"])
    def test_old_leader_rejoins_as_follower(self, protocol):
        cluster, harness = build(protocol=protocol)
        old_leader = cluster.leader_id()
        measurement = harness.crash_leader_and_measure(seed=1)
        assert measurement.converged
        cluster.recover(old_leader)
        harness.run_for(3_000.0)
        rejoined = cluster.node(old_leader)
        assert rejoined.role is Role.FOLLOWER
        assert rejoined.leader_id == cluster.leader_id()
        harness.assert_at_most_one_leader_per_term()

    def test_recovered_escape_leader_with_stale_clock_does_not_retake_leadership(self):
        cluster, harness = build(protocol="escape")
        old_leader = cluster.leader_id()
        harness.crash_leader_and_measure(seed=3)
        new_leader = cluster.leader_id()
        cluster.recover(old_leader)
        harness.run_for(4_000.0)
        assert cluster.leader_id() == new_leader
        harness.assert_at_most_one_leader_per_term()


class TestPartitions:
    def test_leader_in_majority_partition_keeps_working(self):
        cluster, harness = build(protocol="escape", size=5)
        leader_id = cluster.leader_id()
        minority = [
            node.node_id for node in cluster.running_nodes() if node.node_id != leader_id
        ][:2]
        majority = [
            node_id for node_id in cluster.nodes if node_id not in minority
        ]
        cluster.network.partitions.partition(majority, minority)
        index = cluster.propose_via_leader(PutCommand("partitioned", 1))
        harness.run_for(2_000.0)
        assert cluster.leader().commit_index >= index

    def test_minority_partition_cannot_elect_a_leader(self):
        cluster, harness = build(protocol="raft", size=5)
        leader_id = cluster.leader_id()
        followers = [
            node.node_id for node in cluster.running_nodes() if node.node_id != leader_id
        ]
        minority = followers[:2]
        majority = [n for n in cluster.nodes if n not in minority]
        cluster.network.partitions.partition(majority, minority)
        harness.run_for(10_000.0)
        minority_leaders = [
            node_id
            for node_id in minority
            if cluster.node(node_id).role is Role.LEADER
        ]
        assert minority_leaders == []
        harness.assert_at_most_one_leader_per_term()

    def test_cluster_reconverges_after_partition_heals(self):
        cluster, harness = build(protocol="escape", size=5)
        leader_id = cluster.leader_id()
        others = [n for n in cluster.nodes if n != leader_id]
        # Cut the leader away from everyone: the majority side elects a new one.
        cluster.network.partitions.partition([leader_id], others)
        harness.run_for(8_000.0)
        majority_leader = max(
            (cluster.node(n) for n in others), key=lambda node: node.current_term
        )
        assert any(cluster.node(n).role is Role.LEADER for n in others)
        cluster.network.partitions.heal()
        harness.run_for(3_000.0)
        # The isolated old leader steps down once it hears the higher term.
        assert cluster.node(leader_id).role is Role.FOLLOWER
        harness.assert_at_most_one_leader_per_term()
        assert harness.committed_prefixes_consistent()
        assert majority_leader.current_term >= 1

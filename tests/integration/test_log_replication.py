"""Integration tests: log replication and state-machine agreement."""

import pytest

from repro.cluster import ClientWorkload, ElectionHarness, ElectionObserver, build_cluster
from repro.net.latency import ConstantLatency
from repro.statemachine.kvstore import KeyValueStore, PutCommand
from repro.statemachine.register import AppendRegister


def build(protocol="escape", size=5, seed=1, state_machine_factory=None):
    observer = ElectionObserver()
    cluster = build_cluster(
        protocol=protocol,
        size=size,
        seed=seed,
        latency=ConstantLatency(10.0),
        listeners=(observer,),
        state_machine_factory=state_machine_factory,
        trace=False,
    )
    harness = ElectionHarness(cluster, observer)
    cluster.start_all()
    harness.stabilize()
    return cluster, harness


@pytest.mark.parametrize("protocol", ["raft", "escape", "zraft"])
class TestReplication:
    def test_commands_replicate_to_every_running_node(self, protocol):
        cluster, harness = build(protocol=protocol)
        for index in range(5):
            cluster.propose_via_leader(PutCommand(f"key-{index}", index))
            harness.run_for(100.0)
        harness.run_for(1_000.0)
        logs = [node.log.last_index for node in cluster.running_nodes()]
        assert all(last_index == 5 for last_index in logs)
        commits = [node.commit_index for node in cluster.running_nodes()]
        assert all(commit == 5 for commit in commits)
        assert harness.committed_prefixes_consistent()

    def test_every_replica_applies_the_same_state(self, protocol):
        cluster, harness = build(protocol=protocol)
        cluster.propose_via_leader(PutCommand("a", 1))
        harness.run_for(500.0)
        cluster.propose_via_leader(PutCommand("a", 2))
        cluster.propose_via_leader(PutCommand("b", "x"))
        harness.run_for(1_500.0)
        snapshots = [
            node.state_machine.snapshot()
            for node in cluster.running_nodes()
            if isinstance(node.state_machine, KeyValueStore)
        ]
        assert snapshots
        assert all(snapshot == {"a": 2, "b": "x"} for snapshot in snapshots)


class TestReplicationUnderFailover:
    def test_committed_entries_survive_a_leader_crash(self):
        cluster, harness = build(protocol="escape")
        index = cluster.propose_via_leader(PutCommand("durable", "yes"))
        harness.run_for(1_000.0)
        assert cluster.leader().commit_index >= index
        harness.crash_leader_and_measure(seed=1)
        harness.run_for(1_000.0)
        new_leader = cluster.leader()
        assert new_leader.log.has_entry(index)
        assert new_leader.commit_index >= index
        assert new_leader.state_machine.get("durable") == "yes"
        harness.assert_at_most_one_leader_per_term()

    def test_new_leader_accepts_new_writes_after_failover(self):
        cluster, harness = build(protocol="raft")
        cluster.propose_via_leader(PutCommand("before", 1))
        harness.run_for(1_000.0)
        harness.crash_leader_and_measure(seed=2)
        cluster.propose_via_leader(PutCommand("after", 2))
        harness.run_for(1_500.0)
        for node in cluster.running_nodes():
            assert node.state_machine.get("before") == 1
            assert node.state_machine.get("after") == 2

    def test_workload_keeps_replicating_across_failover(self):
        cluster, harness = build(protocol="escape", size=5, seed=9)
        workload = ClientWorkload(cluster, interval_ms=50.0)
        workload.start()
        harness.run_for(1_000.0)
        harness.crash_leader_and_measure(seed=9)
        harness.run_for(2_000.0)
        workload.stop()
        assert workload.proposed > 10
        assert harness.committed_prefixes_consistent()


class TestOrderingGuarantees:
    def test_all_replicas_apply_commands_in_the_same_order(self):
        cluster, harness = build(
            protocol="escape",
            state_machine_factory=lambda server_id: AppendRegister(),
        )
        for value in ("a", "b", "c", "d"):
            cluster.propose_via_leader(value)
            harness.run_for(50.0)
        harness.run_for(1_500.0)
        histories = [node.state_machine.history for node in cluster.running_nodes()]
        assert all(history == ["a", "b", "c", "d"] for history in histories)

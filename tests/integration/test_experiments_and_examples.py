"""Integration tests: the experiment CLI and the example scripts run end-to-end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import registry, run_experiment
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.export import load_run

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"
GOLDEN_REPORTS = REPO_ROOT / "tests" / "golden" / "experiment_reports"

#: The CLI settings the golden reports were captured with (pre-registry code).
GOLDEN_RUNS = {
    "fig3": 2,
    "fig4": 2,
    "fig9": 1,
    "fig9-xl": 1,
    "fig10": 1,
    "fig11": 1,
    "wan": 1,
    "avail": 1,
    "throughput": 2,
    "ablation-ppf": 1,
    "ablation-k": 2,
    "adapter-redis": 2,
}


class TestExperimentsCli:
    def test_fig3_quick_run_prints_a_report(self, capsys):
        assert experiments_main(["fig3", "--runs", "2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "completed in" in output

    def test_fig10_quick_run_prints_a_report(self, capsys):
        assert experiments_main(["fig10", "--runs", "1", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Figure 10" in output

    def test_ablation_k_run(self, capsys):
        assert experiments_main(["ablation-k", "--runs", "1", "--quick"]) == 0
        assert "sensitivity to k" in capsys.readouterr().out

    def test_wan_quick_run_prints_a_report(self, capsys):
        assert experiments_main(["wan", "--runs", "1", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "WAN failover" in output
        assert "geo-two-region" in output

    def test_wan_scenario_override_runs_one_condition(self, capsys):
        assert (
            experiments_main(
                ["wan", "--runs", "1", "--quick", "--scenario", "dup-heavy-udp"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "dup-heavy-udp" in output
        assert "geo-two-region" not in output

    def test_scenario_rejected_for_unaware_experiments(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["fig3", "--scenario", "paper-default"])
        assert "--scenario is not supported" in capsys.readouterr().err

    def test_avail_quick_run_prints_availability_table(self, capsys):
        assert experiments_main(["avail", "--runs", "2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Steady-state availability" in output
        assert "repeated-leader-kill" in output
        assert "availability" in output

    def test_avail_plan_and_protocols_override(self, capsys):
        assert (
            experiments_main(
                [
                    "avail",
                    "--runs",
                    "1",
                    "--quick",
                    "--plan",
                    "partition-flap",
                    "--protocols",
                    "raft,escape",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "partition-flap" in output
        assert "Z-Raft" not in output

    def test_plan_rejected_for_unaware_experiments(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["wan", "--plan", "chaos-storm"])
        assert "--plan is not supported" in capsys.readouterr().err

    def test_list_prints_the_registry_table_and_exits(self, capsys):
        assert experiments_main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "Registered experiments" in output
        for name in registry.names():
            assert name in output

    def test_an_experiment_name_is_required_without_list(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main([])
        assert "required unless --list" in capsys.readouterr().err

    def test_omitted_runs_resolve_to_the_spec_default(self, capsys):
        # adapter-redis registers default_runs=200; the CLI must not pin its
        # own global default over the registry's.
        assert experiments_main(["adapter-redis"]) == 0
        output = capsys.readouterr().out
        assert "runs=default" in output
        assert "(200 runs per cell)" in output

    def test_output_rejected_up_front_for_exporterless_experiments(
        self, tmp_path, capsys
    ):
        from repro.experiments.spec import ExperimentSpec

        registry.register(
            ExperimentSpec(
                name="no-exporter-fixture",
                title="Exporterless",
                run=lambda **kwargs: kwargs,
                reporter=lambda result: "unreachable",
            )
        )
        try:
            with pytest.raises(SystemExit):
                experiments_main(
                    ["no-exporter-fixture", "--output", str(tmp_path)]
                )
        finally:
            registry.unregister("no-exporter-fixture")
        # The error fires before the sweep runs, naming the experiment.
        captured = capsys.readouterr()
        assert "needs an exporter binding" in captured.err
        assert "no-exporter-fixture" in captured.err
        assert not any(tmp_path.iterdir())

    def test_adapter_redis_adjustments_are_noted(self, capsys):
        assert (
            experiments_main(
                ["adapter-redis", "--runs", "2", "--workers", "2", "--quick"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "note: runs raised from 2 to 50" in output
        assert "note: --workers ignored" in output

    def test_output_dir_round_trips_through_the_generic_export(
        self, tmp_path, capsys
    ):
        assert (
            experiments_main(
                [
                    "fig3",
                    "--runs",
                    "2",
                    "--seed",
                    "3",
                    "--quick",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "saved:" in capsys.readouterr().out
        metadata, loaded = load_run("fig3", tmp_path)
        assert metadata["runs"] == 2 and metadata["seed"] == 3
        # The loaded sets must match a programmatic run with the same settings.
        run = run_experiment("fig3", runs=2, seed=3, quick=True)
        original = registry.get("fig3").exporter.extract(run.result)
        assert set(loaded) == set(original)
        for label, measurement_set in original.items():
            assert loaded[label].measurements == measurement_set.measurements
        assert (tmp_path / "fig3.report.txt").read_text() == run.report + "\n"


class TestGoldenReports:
    """The registry-driven CLI reproduces the pre-registry reports exactly.

    The files under ``tests/golden/experiment_reports/`` were captured from
    the hand-written ``_run_*`` CLI wrappers the registry replaced (runs as
    in ``GOLDEN_RUNS``, seed 3, quick mode).  Every CLI invocation must
    still produce byte-identical report tables.
    """

    def test_every_builtin_experiment_has_a_golden_report(self):
        assert set(GOLDEN_RUNS) == set(registry.names())
        for name in GOLDEN_RUNS:
            assert (GOLDEN_REPORTS / f"{name}.txt").exists()

    @pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
    def test_cli_report_is_byte_identical_to_pre_registry_code(
        self, name, capsys
    ):
        assert (
            experiments_main(
                [name, "--runs", str(GOLDEN_RUNS[name]), "--seed", "3", "--quick"]
            )
            == 0
        )
        golden = (GOLDEN_REPORTS / f"{name}.txt").read_text().rstrip("\n")
        assert golden in capsys.readouterr().out


class TestFig9XlPathEquality:
    """The streaming and in-memory data paths are interchangeable.

    At paper-scale run counts the aggregates stay in their exact regime, so
    the two paths must agree to the byte: same rendered report, same exported
    rows, observably equal aggregates.  This is the regression pin that lets
    fig9-xl default to streaming without changing a single reported digit.
    """

    def test_streaming_and_raw_paths_render_identical_reports(self):
        from repro.experiments import fig09_xl_scale

        streamed = fig09_xl_scale.run(runs=3, seed=11, sizes=(8, 16))
        raw = fig09_xl_scale.run(runs=3, seed=11, sizes=(8, 16), streaming=False)
        assert streamed.streaming and not raw.streaming
        assert fig09_xl_scale.report(streamed) == fig09_xl_scale.report(raw)
        assert fig09_xl_scale._export_rows(streamed) == fig09_xl_scale._export_rows(raw)
        assert set(streamed.by_label) == set(raw.by_label)
        for label in streamed.by_label:
            assert streamed.by_label[label] == raw.by_label[label]

    def test_cli_checkpoint_run_resumes_to_the_same_report(self, tmp_path, capsys):
        args = ["fig9-xl", "--runs", "2", "--seed", "4", "--quick"]
        checkpointed = args + ["--checkpoint", str(tmp_path)]
        assert experiments_main(checkpointed) == 0
        first = capsys.readouterr().out
        # Every chunk is on disk now; the re-run replays the checkpoint.
        assert experiments_main(checkpointed) == 0
        second = capsys.readouterr().out
        assert experiments_main(args) == 0
        plain = capsys.readouterr().out

        def table(out: str) -> str:
            return out[out.index("Figure 9 XL") : out.rindex("-- completed")]

        assert table(first) == table(second) == table(plain)


class TestThroughputPathEquality:
    """The throughput experiment is path-independent to the byte.

    Same report and aggregates whatever the worker count, data path
    (streaming vs in-memory) or simulation engine -- the acceptance pin for
    the workload subsystem's determinism contract.
    """

    ARGS = dict(runs=2, seed=3, horizon_ms=30_000.0, workloads=("closed-loop",))

    def test_worker_counts_agree(self):
        from repro.experiments import exp_throughput

        serial = exp_throughput.run(workers=1, **self.ARGS)
        fanned = exp_throughput.run(workers=4, **self.ARGS)
        assert serial.by_label == fanned.by_label
        assert exp_throughput.report(serial) == exp_throughput.report(fanned)

    def test_streaming_and_raw_paths_agree(self):
        from repro.experiments import exp_throughput

        raw = exp_throughput.run(**self.ARGS)
        streamed = exp_throughput.run(streaming=True, workers=2, **self.ARGS)
        assert streamed.streaming and not raw.streaming
        assert streamed.by_label == raw.by_label
        assert exp_throughput.report(streamed) == exp_throughput.report(raw)
        assert exp_throughput._export_rows(streamed) == exp_throughput._export_rows(
            raw
        )

    def test_engines_agree(self):
        from repro.experiments import exp_throughput
        from repro.sim import engines

        classic = exp_throughput.run(**self.ARGS)
        with engines.using_engine("flat"):
            flat = exp_throughput.run(**self.ARGS)
        assert classic.by_label == flat.by_label

    def test_checkpoint_requires_streaming(self):
        from repro.common.errors import ConfigurationError
        from repro.experiments import exp_throughput

        with pytest.raises(ConfigurationError, match="streaming"):
            exp_throughput.run(checkpoint="/tmp/nope", **self.ARGS)

    def test_cli_checkpoint_run_resumes_to_the_same_report(self, tmp_path, capsys):
        args = ["throughput", "--runs", "1", "--seed", "4", "--quick"]
        checkpointed = args + ["--checkpoint", str(tmp_path)]
        assert experiments_main(checkpointed) == 0
        first = capsys.readouterr().out
        assert experiments_main(checkpointed) == 0
        second = capsys.readouterr().out
        assert experiments_main(args) == 0
        plain = capsys.readouterr().out

        def table(out: str) -> str:
            return out[out.index("Throughput under") : out.rindex("-- completed")]

        assert table(first) == table(second) == table(plain)


class TestExamples:
    def test_quickstart_runs_and_reports_failover(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "7"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "new leader" in result.stdout
        assert "election safety check passed" in result.stdout

    def test_compare_protocols_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "compare_protocols.py"),
                "--runs",
                "2",
                "--sizes",
                "5",
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "ESCAPE" in result.stdout

    def test_message_loss_study_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "message_loss_study.py"),
                "--runs",
                "2",
                "--size",
                "5",
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "Figure 11" in result.stdout

    def test_geo_distributed_example_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "geo_distributed_failover.py"),
                "--runs",
                "3",
                "--chaos-horizon-ms",
                "45000",
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "Geo-distributed failover" in result.stdout
        # The chaos phase runs the partition-flap plan end-to-end on the
        # same WAN topology and reports steady-state availability.
        assert "partition-flap chaos" in result.stdout
        assert "availability" in result.stdout

    def test_live_asyncio_example_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "live_asyncio_cluster.py"),
                "--base-port",
                "29720",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "took over" in result.stdout

"""Integration tests: the experiment CLI and the example scripts run end-to-end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = REPO_ROOT / "examples"


class TestExperimentsCli:
    def test_fig3_quick_run_prints_a_report(self, capsys):
        assert experiments_main(["fig3", "--runs", "2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "completed in" in output

    def test_fig10_quick_run_prints_a_report(self, capsys):
        assert experiments_main(["fig10", "--runs", "1", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Figure 10" in output

    def test_ablation_k_run(self, capsys):
        assert experiments_main(["ablation-k", "--runs", "1", "--quick"]) == 0
        assert "sensitivity to k" in capsys.readouterr().out

    def test_wan_quick_run_prints_a_report(self, capsys):
        assert experiments_main(["wan", "--runs", "1", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "WAN failover" in output
        assert "geo-two-region" in output

    def test_wan_scenario_override_runs_one_condition(self, capsys):
        assert (
            experiments_main(
                ["wan", "--runs", "1", "--quick", "--scenario", "dup-heavy-udp"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "dup-heavy-udp" in output
        assert "geo-two-region" not in output

    def test_scenario_rejected_for_unaware_experiments(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["fig3", "--scenario", "paper-default"])
        assert "--scenario is not supported" in capsys.readouterr().err

    def test_avail_quick_run_prints_availability_table(self, capsys):
        assert experiments_main(["avail", "--runs", "2", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Steady-state availability" in output
        assert "repeated-leader-kill" in output
        assert "availability" in output

    def test_avail_plan_and_protocols_override(self, capsys):
        assert (
            experiments_main(
                [
                    "avail",
                    "--runs",
                    "1",
                    "--quick",
                    "--plan",
                    "partition-flap",
                    "--protocols",
                    "raft,escape",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "partition-flap" in output
        assert "Z-Raft" not in output

    def test_plan_rejected_for_unaware_experiments(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["wan", "--plan", "chaos-storm"])
        assert "--plan is not supported" in capsys.readouterr().err


class TestExamples:
    def test_quickstart_runs_and_reports_failover(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "7"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "new leader" in result.stdout
        assert "election safety check passed" in result.stdout

    def test_compare_protocols_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "compare_protocols.py"),
                "--runs",
                "2",
                "--sizes",
                "5",
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "ESCAPE" in result.stdout

    def test_message_loss_study_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "message_loss_study.py"),
                "--runs",
                "2",
                "--size",
                "5",
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "Figure 11" in result.stdout

    def test_geo_distributed_example_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "geo_distributed_failover.py"),
                "--runs",
                "3",
                "--chaos-horizon-ms",
                "45000",
            ],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        assert "Geo-distributed failover" in result.stdout
        # The chaos phase runs the partition-flap plan end-to-end on the
        # same WAN topology and reports steady-state availability.
        assert "partition-flap chaos" in result.stdout
        assert "availability" in result.stdout

    def test_live_asyncio_example_small_run(self):
        result = subprocess.run(
            [
                sys.executable,
                str(EXAMPLES / "live_asyncio_cluster.py"),
                "--base-port",
                "29720",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "took over" in result.stdout

"""Property-based tests for the network's delivery accounting.

The invariant under test: once every in-flight message has drained, every
message copy ends in exactly one terminal state, so

    sent + duplicated == delivered + dropped

(``duplicated`` counts the extra copies the duplication fault schedules; each
such copy is delivered or dropped in flight but was never counted as sent).
The invariant must hold for any interleaving of unicasts, broadcasts,
disconnects, reconnects and partitions under any fault injector -- including
the historical bug case of a *disconnected sender broadcasting*, which used
to count drops without the matching sends.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.faults import (
    BroadcastOmissionFault,
    CompositeFault,
    LinkFault,
    MessageDuplicationFault,
    NoFault,
    PacketLossFault,
)
from repro.net.latency import ConstantLatency
from repro.net.network import SimulatedNetwork
from repro.sim.world import SimulationWorld

MEMBERS = (1, 2, 3, 4, 5)

FAULTS = st.sampled_from(
    [
        NoFault(),
        PacketLossFault(0.3),
        BroadcastOmissionFault(0.4),
        BroadcastOmissionFault(0.5, affect_unicast=True),
        MessageDuplicationFault(0.5),
        LinkFault(broken_links=frozenset({(1, 2), (3, 4)})),
        CompositeFault(
            injectors=(BroadcastOmissionFault(0.2), MessageDuplicationFault(0.3))
        ),
        CompositeFault(
            injectors=(PacketLossFault(0.2), MessageDuplicationFault(0.4))
        ),
    ]
)

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("send"),
            st.sampled_from(MEMBERS),
            st.sampled_from(MEMBERS),
        ),
        st.tuples(st.just("broadcast"), st.sampled_from(MEMBERS)),
        st.tuples(st.just("disconnect"), st.sampled_from(MEMBERS)),
        st.tuples(st.just("reconnect"), st.sampled_from(MEMBERS)),
        st.tuples(st.just("partition"), st.integers(1, len(MEMBERS) - 1)),
        st.tuples(st.just("heal")),
        st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=50.0)),
    ),
    max_size=60,
)


@given(ops=OPS, fault=FAULTS, seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_sent_equals_delivered_plus_dropped_after_drain(ops, fault, seed):
    world = SimulationWorld(seed=seed)
    network = SimulatedNetwork(
        world, MEMBERS, latency=ConstantLatency(10.0), fault=fault
    )
    for member in MEMBERS:
        network.register(member, lambda src, payload: None)

    for op in ops:
        kind = op[0]
        if kind == "send":
            _, src, dst = op
            if src != dst:
                network.send(src, dst, "m")
        elif kind == "broadcast":
            (_, src) = op
            targets = [member for member in MEMBERS if member != src]
            network.broadcast(src, targets, lambda dst: "b")
        elif kind == "disconnect":
            network.disconnect(op[1])
        elif kind == "reconnect":
            network.reconnect(op[1])
        elif kind == "partition":
            split = op[1]
            network.partitions.heal()
            network.partitions.partition(MEMBERS[:split], MEMBERS[split:])
        elif kind == "heal":
            network.partitions.heal()
        elif kind == "advance":
            world.run_for(op[1])

    # Drain everything still in flight, then check the books balance.
    world.scheduler.run_until_idle()
    stats = network.stats
    assert stats.sent + stats.duplicated == stats.delivered + stats.dropped, (
        f"sent={stats.sent} delivered={stats.delivered} "
        f"duplicated={stats.duplicated} dropped={stats.dropped}"
    )

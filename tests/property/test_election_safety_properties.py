"""Property-based end-to-end safety tests.

Hypothesis drives whole simulated clusters through randomized conditions
(protocol, size, latency spread, message loss, crash timing) and checks the
invariants that must hold regardless of parameters:

* election safety -- at most one leader is elected per term;
* log matching -- committed prefixes agree across running nodes;
* ESCAPE-specific -- without faults, ESCAPE never splits votes and converges.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ElectionScenario
from repro.raft.state import Role

scenario_parameters = st.fixed_dictionaries(
    {
        "protocol": st.sampled_from(["raft", "escape", "zraft"]),
        "cluster_size": st.integers(min_value=3, max_value=9),
        "loss_rate": st.sampled_from([0.0, 0.0, 0.2, 0.4]),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestClusterSafetyProperties:
    @given(scenario_parameters)
    @SETTINGS
    def test_at_most_one_leader_per_term_under_any_conditions(self, params):
        seed = params.pop("seed")
        scenario = ElectionScenario(
            workload_interval_ms=200.0 if params["loss_rate"] else 0.0,
            max_election_ms=60_000.0,
            **params,
        )
        cluster, harness = scenario.build(seed)
        cluster.start_all()
        harness.stabilize()
        harness.run_for(500.0)
        harness.crash_leader_and_measure(seed=seed, max_election_ms=60_000.0)
        harness.assert_at_most_one_leader_per_term()
        assert harness.committed_prefixes_consistent()

    @given(scenario_parameters)
    @SETTINGS
    def test_at_most_one_running_leader_holds_the_highest_term(self, params):
        seed = params.pop("seed")
        scenario = ElectionScenario(
            workload_interval_ms=200.0 if params["loss_rate"] else 0.0,
            max_election_ms=60_000.0,
            **params,
        )
        cluster, harness = scenario.build(seed)
        cluster.start_all()
        harness.stabilize()
        harness.crash_leader_and_measure(seed=seed, max_election_ms=60_000.0)
        leaders = [
            node for node in cluster.running_nodes() if node.role is Role.LEADER
        ]
        terms = [node.current_term for node in cluster.running_nodes()]
        if leaders:
            top = max(leaders, key=lambda node: node.current_term)
            assert top.current_term == max(terms)

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @SETTINGS
    def test_escape_without_faults_always_converges_without_split_votes(
        self, cluster_size, seed
    ):
        scenario = ElectionScenario(protocol="escape", cluster_size=cluster_size)
        measurement = scenario.run(seed)
        assert measurement.converged
        assert not measurement.split_vote
        assert measurement.total_ms < 10_000.0

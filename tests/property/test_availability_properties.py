"""Property-based tests for the availability timeline and interval algebra.

The chaos subsystem's headline number -- the leaderless fraction of a
measured window -- is only meaningful if the interval decomposition is sound.
These properties pin it for *arbitrary* crash/recover/election sequences
(modelled as arbitrary availability flips at non-decreasing times, which is
exactly what the observer feeds the timeline): the available and leaderless
intervals are each ordered and non-overlapping, together they tile the
measured horizon exactly, and the leaderless fraction stays in ``[0, 1]``.
"""

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.chaos.availability import AvailabilityTimeline
from repro.common.errors import SimulationError

# An arbitrary fault history: the window's starting state, then a sequence of
# (time delta, observed availability) observations.  Deltas of zero exercise
# the same-instant collapse; repeated states exercise the no-op path.
TRANSITIONS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
        st.booleans(),
    ),
    max_size=60,
)


def _build_timeline(initial, transitions, start_ms=1_000.0):
    timeline = AvailabilityTimeline(start_ms, initial)
    now = start_ms
    for delta, available in transitions:
        now += delta
        timeline.record(now, available)
    return timeline, now


class TestAvailabilityIntervalProperties:
    @given(st.booleans(), TRANSITIONS, st.floats(min_value=0.0, max_value=10_000.0))
    def test_intervals_tile_the_window_exactly(self, initial, transitions, tail):
        timeline, last = _build_timeline(initial, transitions)
        end = last + tail
        report = timeline.finalize(end)

        merged = sorted(
            [*report.available_intervals, *report.leaderless_intervals]
        )
        # Every interval is forward; consecutive intervals meet exactly
        # (ordered, non-overlapping, gap-free), and the union spans the
        # window -- no time is counted twice and none is lost.
        for start, stop in merged:
            assert start < stop
        for (_, prev_end), (next_start, _) in zip(merged, merged[1:]):
            assert prev_end == next_start
        if merged:
            assert merged[0][0] == report.start_ms
            assert merged[-1][1] == report.end_ms
        else:
            assert report.start_ms == report.end_ms

    @given(st.booleans(), TRANSITIONS, st.floats(min_value=0.0, max_value=10_000.0))
    def test_leaderless_fraction_is_a_fraction(self, initial, transitions, tail):
        timeline, last = _build_timeline(initial, transitions)
        report = timeline.finalize(last + tail)
        assert 0.0 <= report.unavailability <= 1.0
        assert 0.0 <= report.availability <= 1.0
        assert report.unavailability + report.availability == pytest.approx(1.0)

    @given(st.booleans(), TRANSITIONS)
    def test_each_interval_list_is_ordered_and_disjoint(self, initial, transitions):
        timeline, last = _build_timeline(initial, transitions)
        report = timeline.finalize(last + 500.0)
        for intervals in (report.available_intervals, report.leaderless_intervals):
            for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
                assert prev_end <= next_start

    @given(st.booleans(), TRANSITIONS)
    def test_recovery_latencies_match_the_leaderless_intervals(
        self, initial, transitions
    ):
        timeline, last = _build_timeline(initial, transitions)
        report = timeline.finalize(last + 500.0)
        latencies = report.recovery_latencies_ms()
        assert len(latencies) == len(report.leaderless_intervals)
        assert all(latency > 0.0 for latency in latencies)
        assert sum(latencies) == report.leaderless_ms

    @given(st.booleans(), TRANSITIONS)
    def test_durations_add_up(self, initial, transitions):
        timeline, last = _build_timeline(initial, transitions)
        report = timeline.finalize(last + 250.0)
        assert report.available_ms + report.leaderless_ms == pytest.approx(
            report.duration_ms
        )


class TestTimelineEdgeCases:
    def test_time_cannot_run_backwards(self):
        timeline = AvailabilityTimeline(100.0, True)
        timeline.record(200.0, False)
        with pytest.raises(SimulationError, match="precedes"):
            timeline.record(150.0, True)

    def test_finalize_cannot_precede_the_last_transition(self):
        timeline = AvailabilityTimeline(100.0, True)
        timeline.record(300.0, False)
        with pytest.raises(SimulationError, match="precedes"):
            timeline.finalize(200.0)

    def test_same_instant_flip_collapses_the_zero_length_segment(self):
        timeline = AvailabilityTimeline(0.0, True)
        timeline.record(100.0, False)
        timeline.record(100.0, True)  # flipped back in the same instant
        report = timeline.finalize(200.0)
        assert report.leaderless_intervals == ()
        assert report.available_intervals == ((0.0, 200.0),)

    def test_empty_window_has_no_intervals(self):
        timeline = AvailabilityTimeline(50.0, False)
        report = timeline.finalize(50.0)
        assert report.available_intervals == ()
        assert report.leaderless_intervals == ()
        assert report.unavailability == 0.0

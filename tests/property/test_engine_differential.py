"""Differential testing of the simulation engines.

The engine contract (:mod:`repro.sim.engines`) says the ``classic`` and
``flat`` engines are *bit-identical*: for the same ``(scenario, seed)`` they
must produce the same measurements, the same :class:`NetworkStats`, the same
trace stream, and the same availability timeline -- an engine may only remove
allocation and indirection, never reorder RNG draws or events.  This suite
states that contract as properties over random seeds, the registered
liveness-guaranteeing protocols, and the catalog's network conditions.

``raft-fixed`` is deliberately absent: it livelocks by design (degenerate
baseline) and cannot finish a measured episode on *either* engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plans import build_plan
from repro.chaos.scenario import ChaosScenario
from repro.cluster.catalog import condition_names, scenario_for
from repro.cluster.scenarios import ElectionScenario
from repro.sim.engines import names as engine_names

#: Every registered protocol that can finish a measured election episode.
LIVENESS_PROTOCOLS = ("raft", "zraft", "escape", "raft-stagger", "escape-noppf")

ENGINES = tuple(engine_names())

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _episode(scenario: ElectionScenario, seed: int):
    """One measured episode plus the engine-visible side channels."""
    cluster, harness = scenario.build(seed)
    cluster.start_all()
    harness.stabilize(max_time_ms=scenario.stabilize_ms)
    measurement = harness.crash_leader_and_measure(
        max_election_ms=scenario.max_election_ms, seed=seed
    )
    return (
        measurement,
        cluster.network.stats,
        cluster.world.now(),
        tuple(cluster.world.tracer.records),
    )


class TestElectionDifferential:
    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS, protocol=st.sampled_from(LIVENESS_PROTOCOLS))
    def test_measurements_identical_across_engines(self, seed, protocol):
        scenario = ElectionScenario(protocol=protocol, cluster_size=5)
        baseline = scenario.with_engine(ENGINES[0]).run(seed)
        for engine in ENGINES[1:]:
            assert scenario.with_engine(engine).run(seed) == baseline

    @settings(max_examples=8, deadline=None)
    @given(seed=SEEDS, condition=st.sampled_from(condition_names()))
    def test_catalog_conditions_identical_including_stats_and_traces(
        self, seed, condition
    ):
        # trace=True makes this the strongest form of the contract: not just
        # the final numbers but the entire event narrative must match.
        scenario = scenario_for(condition, protocol="escape", cluster_size=5, trace=True)
        baseline = _episode(scenario.with_engine(ENGINES[0]), seed)
        for engine in ENGINES[1:]:
            other = _episode(scenario.with_engine(engine), seed)
            assert other[0] == baseline[0], "measurement diverged"
            assert other[1] == baseline[1], "NetworkStats diverged"
            assert other[2] == baseline[2], "final simulated time diverged"
            assert other[3] == baseline[3], "trace stream diverged"

    @settings(max_examples=6, deadline=None)
    @given(seed=SEEDS, protocol=st.sampled_from(LIVENESS_PROTOCOLS))
    def test_trace_toggle_never_changes_results(self, seed, protocol):
        """Tracing is observability only -- on either engine."""
        quiet = ElectionScenario(protocol=protocol, cluster_size=5, trace=False)
        loud = ElectionScenario(protocol=protocol, cluster_size=5, trace=True)
        results = {
            (engine, trace_on): scenario.with_engine(engine).run(seed)
            for engine in ENGINES
            for trace_on, scenario in ((False, quiet), (True, loud))
        }
        baseline = results[(ENGINES[0], False)]
        assert all(result == baseline for result in results.values())


class TestAvailabilityDifferential:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_chaos_timeline_identical_across_engines(self, seed):
        plan = build_plan("partition-flap", horizon_ms=60_000.0, seed=seed)
        scenario = ChaosScenario(protocol="escape", cluster_size=5, plan=plan)
        baseline = scenario.with_engine(ENGINES[0]).run(seed)
        for engine in ENGINES[1:]:
            other = scenario.with_engine(engine).run(seed)
            # Full-record equality covers the availability aggregates, the
            # recovery latencies and the raw leaderless-interval timeline.
            assert other == baseline

"""Property-based tests for the event scheduler, statistics and the codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.escape.configuration import Configuration
from repro.escape.messages import EscapeAppendEntriesRequest, EscapeRequestVoteRequest
from repro.metrics.stats import cumulative_distribution, percentile, summarize
from repro.raft.messages import AppendEntriesRequest, RequestVoteResponse
from repro.runtime.codec import decode_message, encode_message
from repro.sim.scheduler import EventScheduler
from repro.storage.log import LogEntry


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=10_000.0), max_size=50))
    def test_events_always_execute_in_non_decreasing_time_order(self, delays):
        scheduler = EventScheduler()
        executed = []
        for delay in delays:
            scheduler.call_after(delay, lambda: executed.append(scheduler.now()))
        scheduler.run_until_idle()
        assert executed == sorted(executed)
        assert len(executed) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=1_000.0), st.booleans()),
            max_size=40,
        )
    )
    def test_cancelled_events_never_run(self, schedule):
        scheduler = EventScheduler()
        fired = []
        handles = []
        for index, (delay, cancel) in enumerate(schedule):
            handles.append(
                (scheduler.call_after(delay, lambda index=index: fired.append(index)), cancel)
            )
        for handle, cancel in handles:
            if cancel:
                handle.cancel()
        scheduler.run_until_idle()
        cancelled = {index for index, (_, cancel) in enumerate(schedule) if cancel}
        assert cancelled.isdisjoint(fired)
        assert len(fired) == len(schedule) - len(cancelled)


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_is_monotone_and_normalised(self, values):
        cdf = cumulative_distribution(values)
        xs = [point[0] for point in cdf]
        ys = [point[1] for point in cdf]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert abs(ys[-1] - 1.0) < 1e-9

    @staticmethod
    def _leq(a: float, b: float) -> bool:
        """``a <= b`` up to one part in 10^9 of floating-point slack.

        Linear interpolation and averaging can land one ulp outside the exact
        sample bounds; the orderings below are meant up to that slack.
        """
        return a <= b or abs(a - b) <= 1e-9 * max(abs(a), abs(b), 1.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_is_bounded_by_min_and_max(self, values, q):
        result = percentile(values, q)
        assert self._leq(min(values), result)
        assert self._leq(result, max(values))

    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=200))
    def test_summary_orderings_hold(self, values):
        summary = summarize(values)
        assert self._leq(summary.minimum, summary.median)
        assert self._leq(summary.median, summary.maximum)
        assert self._leq(summary.minimum, summary.mean)
        assert self._leq(summary.mean, summary.maximum)
        assert self._leq(summary.p95, summary.p99)
        assert self._leq(summary.p99, summary.maximum)
        assert summary.std_dev >= 0.0


commands = st.one_of(
    st.none(),
    st.integers(min_value=-1_000, max_value=1_000),
    st.text(max_size=8),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
)


@st.composite
def append_entries_messages(draw):
    entry_count = draw(st.integers(min_value=0, max_value=5))
    start = draw(st.integers(min_value=1, max_value=50))
    term = draw(st.integers(min_value=1, max_value=20))
    entries = tuple(
        LogEntry(term=term, index=start + offset, command=draw(commands))
        for offset in range(entry_count)
    )
    escape = draw(st.booleans())
    base = dict(
        term=term,
        leader_id=draw(st.integers(min_value=1, max_value=16)),
        prev_log_index=start - 1,
        prev_log_term=draw(st.integers(min_value=0, max_value=term)),
        entries=entries,
        leader_commit=draw(st.integers(min_value=0, max_value=start + entry_count)),
    )
    if not escape:
        return AppendEntriesRequest(**base)
    config = None
    if draw(st.booleans()):
        config = Configuration(
            priority=draw(st.integers(min_value=1, max_value=16)),
            timer_period_ms=draw(st.floats(min_value=1.0, max_value=10_000.0)),
            conf_clock=draw(st.integers(min_value=0, max_value=100)),
        )
    return EscapeAppendEntriesRequest(**base, new_config=config)


class TestCodecProperties:
    @given(append_entries_messages())
    @settings(max_examples=80, deadline=None)
    def test_append_entries_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=16),
        st.booleans(),
    )
    def test_vote_response_round_trip(self, term, voter, granted):
        message = RequestVoteResponse(term=term, voter_id=voter, vote_granted=granted)
        assert decode_message(encode_message(message)) == message

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=16),
    )
    def test_escape_vote_request_round_trip(self, term, candidate, clock, priority):
        message = EscapeRequestVoteRequest(
            term=term,
            candidate_id=candidate,
            last_log_index=0,
            last_log_term=0,
            conf_clock=clock,
            priority=priority,
        )
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert type(decoded) is EscapeRequestVoteRequest

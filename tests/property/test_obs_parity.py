"""Telemetry snapshot parity: workers, engines and the merge contract.

The telemetry snapshot is part of the repo's determinism claim: a
telemetry-enabled sweep must produce *bit-identical* per-label snapshots at
any ``--workers`` count, and the engine contract extends to every harvested
counter -- ``classic`` and ``flat`` must agree on scheduler, network and
node metrics, not just on measurements.
"""

from __future__ import annotations

from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import run_scenario_set
from repro.obs.telemetry import sweep_telemetry
from repro.sim.engines import names as engine_names

ENGINES = tuple(engine_names())


def _scenarios(engine: str | None = None) -> dict[str, ElectionScenario]:
    scenarios = {
        "raft@3": ElectionScenario(protocol="raft", cluster_size=3, telemetry=True),
        "escape@5": ElectionScenario(
            protocol="escape", cluster_size=5, telemetry=True
        ),
    }
    if engine is not None:
        scenarios = {
            label: scenario.with_engine(engine)
            for label, scenario in scenarios.items()
        }
    return scenarios


class TestWorkerParity:
    def test_snapshots_bit_identical_at_any_worker_count(self):
        sequential = sweep_telemetry(
            run_scenario_set(_scenarios(), runs=4, seed=9, workers=1)
        )
        fanned_out = sweep_telemetry(
            run_scenario_set(_scenarios(), runs=4, seed=9, workers=4)
        )
        assert set(sequential) == {"raft@3", "escape@5"}
        assert fanned_out == sequential
        # The snapshots carry real work, not zeros.
        for snapshot in sequential.values():
            assert snapshot.counters["sim.events.executed"] > 0
            assert snapshot.counters["net.delivered"] > 0
            assert snapshot.counters["node.elections_won"] >= 4


class TestEngineParity:
    def test_snapshots_bit_identical_across_engines(self):
        baseline = sweep_telemetry(
            run_scenario_set(_scenarios(ENGINES[0]), runs=3, seed=5, workers=1)
        )
        for engine in ENGINES[1:]:
            other = sweep_telemetry(
                run_scenario_set(_scenarios(engine), runs=3, seed=5, workers=1)
            )
            assert other == baseline

    def test_single_episode_snapshots_agree_across_engines(self):
        scenario = ElectionScenario(
            protocol="escape", cluster_size=5, loss_rate=0.1, telemetry=True
        )
        baseline = scenario.with_engine(ENGINES[0]).run(17).extra["telemetry"]
        for engine in ENGINES[1:]:
            assert scenario.with_engine(engine).run(17).extra["telemetry"] == baseline


class TestPlainRunsStayTelemetryFree:
    def test_disabled_scenarios_attach_no_snapshot(self):
        measurement = ElectionScenario(protocol="raft", cluster_size=3).run(0)
        assert "telemetry" not in measurement.extra

    def test_enabling_telemetry_does_not_change_the_measurement(self):
        plain = ElectionScenario(protocol="raft", cluster_size=3).run(21)
        instrumented = ElectionScenario(
            protocol="raft", cluster_size=3, telemetry=True
        ).run(21)
        assert instrumented.total_ms == plain.total_ms
        assert instrumented.detection_ms == plain.detection_ms
        assert instrumented.converged == plain.converged

"""Property-based tests for the replicated log (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.log import LogEntry, ReplicatedLog


@st.composite
def term_sequences(draw, max_length=30):
    """Non-decreasing term sequences, as they appear in a real log."""
    length = draw(st.integers(min_value=0, max_value=max_length))
    terms = []
    current = 1
    for _ in range(length):
        current += draw(st.integers(min_value=0, max_value=2))
        terms.append(current)
    return terms


def log_from_terms(terms):
    log = ReplicatedLog()
    for index, term in enumerate(terms, start=1):
        log.append_entry(LogEntry(term=term, index=index, command=index))
    return log


class TestStructuralInvariants:
    @given(term_sequences())
    def test_terms_are_non_decreasing_and_indexes_contiguous(self, terms):
        log = log_from_terms(terms)
        previous_term = 0
        for position, entry in enumerate(log, start=1):
            assert entry.index == position
            assert entry.term >= previous_term
            previous_term = entry.term
        assert log.last_index == len(terms)

    @given(term_sequences(), st.integers(min_value=1, max_value=40))
    def test_truncate_then_length_matches(self, terms, cut):
        log = log_from_terms(terms)
        before = log.last_index
        removed = log.truncate_from(cut)
        assert log.last_index == min(before, cut - 1)
        assert removed == before - log.last_index


class TestMergeProperties:
    @given(term_sequences())
    def test_merge_is_idempotent(self, terms):
        log = log_from_terms(terms)
        replica = ReplicatedLog()
        entries = list(log)
        replica.merge_entries(0, entries)
        changed_again = replica.merge_entries(0, entries)
        assert not changed_again
        assert replica.last_index == log.last_index
        assert [entry.term for entry in replica] == [entry.term for entry in log]

    @given(term_sequences(), term_sequences())
    def test_merging_leader_suffix_makes_follower_a_prefix_of_leader(self, a, b):
        leader = log_from_terms(a if len(a) >= len(b) else b)
        follower = log_from_terms(b if len(a) >= len(b) else a)
        # Find the first index where the follower diverges from the leader.
        prev = 0
        for index in range(1, min(leader.last_index, follower.last_index) + 1):
            if leader.term_at(index) != follower.term_at(index):
                break
            prev = index
        follower.truncate_from(prev + 1)
        follower.merge_entries(prev, leader.entries_from(prev + 1))
        assert follower.last_index == leader.last_index
        for index in range(1, leader.last_index + 1):
            assert follower.term_at(index) == leader.term_at(index)


class TestUpToDateComparison:
    @given(term_sequences(), term_sequences())
    def test_comparison_is_total(self, a, b):
        # For any two logs, at least one is "at least as up to date" as the other.
        log_a, log_b = log_from_terms(a), log_from_terms(b)
        a_ok = log_a.is_at_least_as_up_to_date_as(log_b.last_term, log_b.last_index)
        b_ok = log_b.is_at_least_as_up_to_date_as(log_a.last_term, log_a.last_index)
        assert a_ok or b_ok

    @given(term_sequences())
    def test_comparison_is_reflexive(self, terms):
        log = log_from_terms(terms)
        assert log.is_at_least_as_up_to_date_as(log.last_term, log.last_index)

    @given(term_sequences(), st.integers(min_value=1, max_value=3))
    def test_extending_a_log_keeps_it_at_least_as_up_to_date(self, terms, extra):
        log = log_from_terms(terms)
        shorter_term, shorter_index = log.last_term, log.last_index
        for _ in range(extra):
            log.append_command(max(log.last_term, 1), command=None)
        assert log.is_at_least_as_up_to_date_as(shorter_term, shorter_index)

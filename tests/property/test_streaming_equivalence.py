"""Property-based pins for the streaming/batch equivalence contract.

The streaming sweep engine only preserves the repository's determinism
guarantee if its aggregates are *exactly* the batch statistics in disguise.
These properties pin the contract declared by :mod:`repro.metrics.streaming`
for arbitrary samples: in the exact regime (count <= capacity), **any**
chunking and **any** merge order of :class:`StreamingSummary` partials
reproduce the batch ``summarize``/``cumulative_distribution`` results
bit-identically; the JSON state round-trip (the checkpoint format) is
bit-exact; and beyond the capacity the compression stays deterministic while
count/min/max remain exact.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    MergeableCDF,
    StreamingSummary,
    cumulative_distribution,
    summarize,
)

CAPACITY = 64

# Finite floats in a measurement-like range; duplicates are likely (small
# grid) so ties exercise the stable-merge path.
VALUES = st.lists(
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False).map(
        lambda value: round(value, 2)
    ),
    min_size=1,
    max_size=CAPACITY,
)

# Chunk boundaries as a list of relative cut weights; normalised per sample.
CUTS = st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=8)


def _chunks(values, cuts):
    """Split *values* into contiguous chunks sized by the relative *cuts*."""
    total = sum(cuts)
    chunks, start = [], 0
    for cut in cuts:
        end = min(len(values), start + max(1, round(len(values) * cut / total)))
        if end > start:
            chunks.append(values[start:end])
        start = end
    if start < len(values):
        chunks.append(values[start:])
    return chunks


@given(values=VALUES, cuts=CUTS)
def test_any_chunking_matches_batch_summary_bit_identically(values, cuts):
    merged = StreamingSummary(capacity=CAPACITY)
    for chunk in _chunks(values, cuts):
        merged.merge(StreamingSummary(capacity=CAPACITY).extend(chunk))
    assert merged.count == len(values)
    # Bit-identical, not approximately equal: summarize returns a frozen
    # dataclass, so == compares every statistic exactly.
    assert merged.summary() == summarize(values)
    assert merged.cumulative_distribution() == cumulative_distribution(values)


@given(values=VALUES, cuts=CUTS, seed=st.integers(min_value=0, max_value=2**31))
def test_merge_order_is_irrelevant_in_the_exact_regime(values, cuts, seed):
    chunks = _chunks(values, cuts)
    partials = [
        StreamingSummary(capacity=CAPACITY).extend(chunk) for chunk in chunks
    ]
    # A deterministic permutation derived from the seed (no global RNG).
    order = sorted(range(len(partials)), key=lambda i: (seed * 2654435761 + i) % 97)
    permuted = StreamingSummary(capacity=CAPACITY)
    for index in order:
        permuted.merge(partials[index])
    assert permuted.summary() == summarize(values)
    assert permuted.cumulative_distribution() == cumulative_distribution(values)


@given(values=VALUES)
def test_json_state_round_trip_is_bit_exact(values):
    summary = StreamingSummary(capacity=CAPACITY).extend(values)
    state = json.loads(json.dumps(summary.to_state()))
    restored = StreamingSummary.from_state(state)
    assert restored.to_state() == summary.to_state()
    assert restored.summary() == summary.summary()


@settings(max_examples=25)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
        min_size=20,
        max_size=120,
    )
)
def test_compressed_regime_is_deterministic_and_exact_on_extremes(values):
    capacity = 8  # force compression for nearly every sample

    def build():
        return StreamingSummary(capacity=capacity).extend(values)

    summary = build()
    assert summary.to_state() == build().to_state()  # same sequence, same state
    stats = summary.summary()
    assert stats.count == len(values)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)
    assert min(values) <= stats.median <= max(values)
    assert min(values) <= stats.p99 <= max(values)


@given(values=VALUES, cuts=CUTS)
def test_sketch_merge_is_lossless_while_exact(values, cuts):
    merged = MergeableCDF(capacity=CAPACITY)
    for chunk in _chunks(values, cuts):
        partial = MergeableCDF(capacity=CAPACITY)
        for value in chunk:
            partial.add(value)
        merged.merge(partial)
    assert merged.exact
    assert merged.values() == sorted(values)

"""Property-based tests for SCA and the Probing Patrol Function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import ScaParameters
from repro.escape.ppf import ProbingPatrol
from repro.escape.sca import assign_initial_configurations, follower_priority_ladder
from repro.escape.sca import validate_assignment


class TestScaProperties:
    @given(
        n=st.integers(min_value=1, max_value=128),
        base=st.floats(min_value=10.0, max_value=5_000.0),
        k=st.floats(min_value=1.0, max_value=1_000.0),
    )
    def test_initial_assignment_is_unique_and_ordered(self, n, base, k):
        params = ScaParameters(base_time_ms=base, k_ms=k)
        configs = assign_initial_configurations(list(range(1, n + 1)), params)
        validate_assignment(configs)
        # Priorities are exactly 1..n and timeouts strictly decrease with priority.
        assert sorted(c.priority for c in configs.values()) == list(range(1, n + 1))
        by_priority = sorted(configs.values(), key=lambda c: c.priority)
        timeouts = [c.timer_period_ms for c in by_priority]
        assert all(earlier > later for earlier, later in zip(timeouts, timeouts[1:]))
        assert min(timeouts) == base

    @given(n=st.integers(min_value=2, max_value=128))
    def test_priority_ladder_is_a_permutation_of_2_to_n(self, n):
        ladder = follower_priority_ladder(n)
        assert sorted(ladder) == list(range(2, n + 1))


@st.composite
def reply_schedules(draw):
    """A random sequence of (follower, log_index, time) reply observations."""
    cluster_size = draw(st.integers(min_value=3, max_value=12))
    leader = draw(st.integers(min_value=1, max_value=cluster_size))
    followers = [sid for sid in range(1, cluster_size + 1) if sid != leader]
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(followers),
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0.0, max_value=10_000.0),
            ),
            max_size=60,
        )
    )
    return cluster_size, leader, followers, sorted(events, key=lambda item: item[2])


class TestPpfProperties:
    @given(reply_schedules())
    @settings(max_examples=50, deadline=None)
    def test_assignments_always_unique_and_clock_monotone(self, schedule):
        cluster_size, leader, followers, events = schedule
        patrol = ProbingPatrol(
            leader_id=leader,
            followers=followers,
            cluster_size=cluster_size,
            sca=ScaParameters(1500.0, 500.0),
            initial_clock=1,
        )
        last_clock = patrol.conf_clock
        leader_last_index = 0
        now = 0.0
        for follower, log_index, time_ms in events:
            now = max(now, time_ms)
            leader_last_index = max(leader_last_index, log_index)
            patrol.record_reply(follower, log_index=log_index, now_ms=time_ms)
            patrol.advance_round(now_ms=now, leader_last_index=leader_last_index)
            # Lemma 3: no duplicate priorities within one clock.
            validate_assignment(patrol.assignments)
            priorities = sorted(c.priority for c in patrol.assignments.values())
            assert priorities == list(range(2, cluster_size + 1))
            # Clocks never move backwards.
            assert patrol.conf_clock >= last_clock
            last_clock = patrol.conf_clock

    @given(reply_schedules())
    @settings(max_examples=50, deadline=None)
    def test_groomed_future_leader_is_never_a_known_laggard(self, schedule):
        cluster_size, leader, followers, events = schedule
        patrol = ProbingPatrol(
            leader_id=leader,
            followers=followers,
            cluster_size=cluster_size,
            sca=ScaParameters(1500.0, 500.0),
        )
        leader_last_index = 0
        now = 0.0
        for follower, log_index, time_ms in events:
            now = max(now, time_ms)
            leader_last_index = max(leader_last_index, log_index)
            patrol.record_reply(follower, log_index=log_index, now_ms=time_ms)
            patrol.advance_round(now_ms=now, leader_last_index=leader_last_index)
            groomed = patrol.groomed_future_leader()
            up_to_date = [
                candidate
                for candidate in followers
                if not patrol.is_lagging(candidate, now, leader_last_index)
            ]
            # If any follower is currently considered up to date, the groomed
            # future leader must be one of them.
            if up_to_date:
                assert groomed in up_to_date

    @given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=20))
    def test_idle_rounds_never_advance_the_clock(self, cluster_size, rounds):
        followers = list(range(2, cluster_size + 1))
        patrol = ProbingPatrol(
            leader_id=1,
            followers=followers,
            cluster_size=cluster_size,
            sca=ScaParameters(1500.0, 500.0),
        )
        for follower in followers:
            patrol.record_reply(follower, log_index=1, now_ms=0.0)
        patrol.advance_round(now_ms=1.0, leader_last_index=1)
        clock = patrol.conf_clock
        for round_index in range(rounds):
            for follower in followers:
                patrol.record_reply(follower, log_index=1, now_ms=round_index + 2.0)
            patrol.advance_round(now_ms=round_index + 2.0, leader_last_index=1)
        assert patrol.conf_clock == clock

"""Pytest configuration shared by every test module."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the sibling ``helpers`` module importable from nested test packages.
TESTS_DIR = Path(__file__).parent
if str(TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(TESTS_DIR))


@pytest.fixture
def fake_env():
    """A fresh hand-driven node environment."""
    from helpers import FakeEnvironment

    return FakeEnvironment(node_id=1)


@pytest.fixture
def fast_config():
    """A protocol configuration with short, test-friendly timings."""
    from helpers import fast_protocol_config

    return fast_protocol_config()
